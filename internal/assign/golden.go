package assign

import (
	"math"

	"docs/internal/mathx"
	"docs/internal/model"
)

// DefaultGoldenCount is the number of golden tasks DOCS selects per
// campaign; the paper finds 20 sufficient (Figure 4(b)).
const DefaultGoldenCount = 20

// GoldenObjective evaluates Equation 11's objective D(σ ‖ τ) for an
// allocation n'_k over m domains: Σ_k (n'_k/n')·ln(n'_k·n' /(n'·Σ... )) —
// equivalently the KL divergence between σ_k = n'_k/n' and τ. Allocations
// placing mass on τ_k = 0 score +Inf.
func GoldenObjective(alloc []int, tau []float64) float64 {
	nPrime := 0
	for _, a := range alloc {
		nPrime += a
	}
	if nPrime == 0 {
		return 0
	}
	var d float64
	for k, a := range alloc {
		if a == 0 {
			continue
		}
		sigma := float64(a) / float64(nPrime)
		if tau[k] <= 0 {
			return math.Inf(1)
		}
		d += sigma * math.Log(sigma/tau[k])
	}
	return d
}

// GoldenAllocation approximately solves Equation 11: distribute n' golden
// tasks over m domains so the allocation distribution σ is as close as
// possible (in KL divergence) to the aggregate task domain distribution τ.
//
// Following the paper's approximation algorithm, each n'_k starts at the
// lower bound ⌊τ_k·n'⌋; the remaining (at most m) units are then placed
// greedily, each on the domain whose increment minimizes the objective.
// Runs in O(m²·n') in the worst case; the paper reports the approximation
// ratio γ = |D − D_opt|/D_opt within 0.1%.
func GoldenAllocation(tau []float64, nPrime int) []int {
	m := len(tau)
	alloc := make([]int, m)
	if nPrime <= 0 || m == 0 {
		return alloc
	}
	used := 0
	for k, t := range tau {
		alloc[k] = int(math.Floor(t * float64(nPrime)))
		used += alloc[k]
	}
	for ; used < nPrime; used++ {
		best := -1
		bestObj := math.Inf(1)
		for k := range alloc {
			if tau[k] <= 0 {
				continue
			}
			alloc[k]++
			if obj := GoldenObjective(alloc, tau); obj < bestObj {
				bestObj = obj
				best = k
			}
			alloc[k]--
		}
		if best < 0 {
			// Degenerate τ (all zero): spread uniformly.
			best = used % m
		}
		alloc[best]++
	}
	return alloc
}

// GoldenAllocationExact solves Equation 11 exactly by enumerating all
// compositions of n' into m non-negative parts (the paper's comparison
// baseline in Figure 7(a)). Cost is C(n'+m−1, m−1); use only for small n', m.
func GoldenAllocationExact(tau []float64, nPrime int) []int {
	m := len(tau)
	best := make([]int, m)
	bestObj := math.Inf(1)
	cur := make([]int, m)
	var rec func(k, remaining int)
	rec = func(k, remaining int) {
		if k == m-1 {
			cur[k] = remaining
			if obj := GoldenObjective(cur, tau); obj < bestObj {
				bestObj = obj
				copy(best, cur)
			}
			return
		}
		for v := 0; v <= remaining; v++ {
			cur[k] = v
			rec(k+1, remaining-v)
		}
	}
	if m > 0 {
		rec(0, nPrime)
	}
	return best
}

// AggregateDomainDistribution computes τ: the mean of the tasks' domain
// vectors (Section 5.2, guideline 2).
func AggregateDomainDistribution(tasks []*model.Task, m int) []float64 {
	tau := make([]float64, m)
	if len(tasks) == 0 {
		return tau
	}
	for _, t := range tasks {
		for k, r := range t.Domain {
			tau[k] += r
		}
	}
	for k := range tau {
		tau[k] /= float64(len(tasks))
	}
	return tau
}

// SelectGolden picks n' golden tasks from the task set: it computes τ,
// allocates per-domain counts via GoldenAllocation, and then, per
// guideline 1, selects for each domain the unchosen tasks with the highest
// relatedness r_k to that domain. Returns the chosen task indices (positions
// in the input slice). Tasks are not repeated across domains.
func SelectGolden(tasks []*model.Task, nPrime, m int) []int {
	if nPrime <= 0 || len(tasks) == 0 {
		return nil
	}
	if nPrime > len(tasks) {
		nPrime = len(tasks)
	}
	tau := AggregateDomainDistribution(tasks, m)
	alloc := GoldenAllocation(tau, nPrime)

	chosen := make([]bool, len(tasks))
	var out []int
	// Serve domains in descending allocation so large domains get first
	// pick of their strongest tasks.
	domainOrder := mathx.TopK(intsToFloats(alloc), m)
	for _, k := range domainOrder {
		need := alloc[k]
		if need == 0 {
			continue
		}
		rk := make([]float64, len(tasks))
		for i, t := range tasks {
			if chosen[i] {
				rk[i] = math.Inf(-1)
			} else {
				rk[i] = t.Domain[k]
			}
		}
		for _, i := range mathx.TopK(rk, need) {
			if chosen[i] || math.IsInf(rk[i], -1) {
				continue
			}
			chosen[i] = true
			out = append(out, i)
		}
	}
	// Top up if rounding or exclusions left us short.
	for i := 0; len(out) < nPrime && i < len(tasks); i++ {
		if !chosen[i] {
			chosen[i] = true
			out = append(out, i)
		}
	}
	return out
}

func intsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
