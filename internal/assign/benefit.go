// Package assign implements the Online Task Assignment (OTA) module of DOCS
// (Section 5 of the paper).
//
// When a worker requests tasks, OTA estimates for every unanswered task the
// expected reduction in truth ambiguity if this worker were to answer it
// (the benefit B(t_i), Definition 5), using the worker's per-domain quality,
// the task's domain vector, and the task's current truth matrix M^(i).
// Theorem 4 shows the benefit of a k-task batch is the sum of individual
// benefits, so the optimal batch is the top-k tasks by benefit, selected in
// linear time.
//
// The package also implements golden-task selection (Section 5.2): choosing
// n' tasks with known ground truth whose domain distribution best matches
// the whole task set's, by approximately minimizing a KL-divergence integer
// program (Equation 11).
package assign

import (
	"fmt"

	"docs/internal/mathx"
	"docs/internal/model"
)

// TaskState is the per-task information OTA consumes: the domain vector and
// the current truth matrix/vector maintained by the TI module.
type TaskState struct {
	// ID identifies the task.
	ID int
	// R is the task's domain vector r^{t_i}.
	R model.DomainVector
	// M is the m × ℓ truth matrix M^(i).
	M [][]float64
	// S is the probabilistic truth s_i = r × M.
	S []float64
}

// Validate checks structural invariants against m domains.
func (ts *TaskState) Validate(m int) error {
	if err := ts.R.Validate(m); err != nil {
		return fmt.Errorf("assign: task %d: %w", ts.ID, err)
	}
	if len(ts.M) != m {
		return fmt.Errorf("assign: task %d: M has %d rows, want %d", ts.ID, len(ts.M), m)
	}
	ell := len(ts.S)
	if ell < 2 {
		return fmt.Errorf("assign: task %d: s has size %d, want >= 2", ts.ID, ell)
	}
	for k, row := range ts.M {
		if len(row) != ell {
			return fmt.Errorf("assign: task %d: M row %d has size %d, want %d", ts.ID, k, len(row), ell)
		}
		if err := mathx.CheckDistribution(row, model.Tolerance); err != nil {
			return fmt.Errorf("assign: task %d row %d: %w", ts.ID, k, err)
		}
	}
	if err := mathx.CheckDistribution(ts.S, model.Tolerance); err != nil {
		return fmt.Errorf("assign: task %d s: %w", ts.ID, err)
	}
	return nil
}

// AnswerProb computes Theorem 2: the probability the worker with quality q
// gives choice a to the task, given the answers collected so far:
//
//	Pr(v^w = a | V) = Σ_k r_k · [ q_k·M_{k,a} + (1−q_k)/(ℓ−1)·(1−M_{k,a}) ].
func AnswerProb(ts *TaskState, q model.QualityVector, a int) float64 {
	ell := float64(len(ts.S))
	var p float64
	for k, rk := range ts.R {
		if rk == 0 {
			continue
		}
		mka := ts.M[k][a]
		p += rk * (q[k]*mka + (1-q[k])/(ell-1)*(1-mka))
	}
	return p
}

// UpdatedM computes Theorem 3: the truth matrix M^(i)|a after the worker
// with quality q answers choice a. Row k is reweighted by the likelihood of
// the answer under domain k and renormalized.
func UpdatedM(ts *TaskState, q model.QualityVector, a int) [][]float64 {
	ell := len(ts.S)
	out := make([][]float64, len(ts.M))
	for k, row := range ts.M {
		qk := q[k]
		wrong := (1 - qk) / float64(ell-1)
		nr := make([]float64, ell)
		var sum float64
		for j, mkj := range row {
			if j == a {
				nr[j] = mkj * qk
			} else {
				nr[j] = mkj * wrong
			}
			sum += nr[j]
		}
		if sum > 0 {
			for j := range nr {
				nr[j] /= sum
			}
		} else {
			copy(nr, mathx.Uniform(ell))
		}
		out[k] = nr
	}
	return out
}

// PosteriorS returns s after the update of Theorem 3: r × (M|a).
func PosteriorS(ts *TaskState, q model.QualityVector, a int) []float64 {
	Ma := UpdatedM(ts, q, a)
	s := make([]float64, len(ts.S))
	for k, rk := range ts.R {
		if rk == 0 {
			continue
		}
		for j, v := range Ma[k] {
			s[j] += rk * v
		}
	}
	return mathx.Normalize(s)
}

// Scratch holds reusable buffers for benefit computation. The seed
// implementation allocated an m×ℓ matrix per (task, choice) pair inside
// Benefit — roughly n·ℓ·(m+2) slices per assignment decision; with a
// Scratch the whole top-k scan over n candidates allocates nothing. A
// Scratch is not safe for concurrent use; give each goroutine its own
// (the core orchestrator keeps them in a sync.Pool).
type Scratch struct {
	post []float64 // posterior s accumulator (ℓ)
	row  []float64 // one renormalized row of M|a (ℓ)
}

func (sc *Scratch) ensure(ell int) {
	if cap(sc.post) < ell {
		sc.post = make([]float64, ell)
		sc.row = make([]float64, ell)
	}
	sc.post = sc.post[:ell]
	sc.row = sc.row[:ell]
}

// posterior fills sc.post with PosteriorS(ts, q, a) without allocating. The
// arithmetic mirrors UpdatedM + PosteriorS term for term (same operation
// order), so results are bit-identical to the allocating path.
func (sc *Scratch) posterior(ts *TaskState, q model.QualityVector, a int) []float64 {
	ell := len(ts.S)
	sc.ensure(ell)
	for j := range sc.post {
		sc.post[j] = 0
	}
	for k, rk := range ts.R {
		if rk == 0 {
			continue
		}
		qk := q[k]
		wrong := (1 - qk) / float64(ell-1)
		var sum float64
		for j, mkj := range ts.M[k] {
			if j == a {
				sc.row[j] = mkj * qk
			} else {
				sc.row[j] = mkj * wrong
			}
			sum += sc.row[j]
		}
		if sum > 0 {
			for j := range sc.row {
				sc.post[j] += rk * (sc.row[j] / sum)
			}
		} else {
			u := 1 / float64(ell)
			for j := range sc.row {
				sc.post[j] += rk * u
			}
		}
	}
	return mathx.Normalize(sc.post)
}

// BenefitWith computes Benefit using the caller's scratch buffers; the hot
// assignment path calls this once per candidate task with a reused Scratch
// and performs zero allocations.
func BenefitWith(ts *TaskState, q model.QualityVector, sc *Scratch) float64 {
	h0 := mathx.Entropy(ts.S)
	var expected float64
	for a := range ts.S {
		pa := AnswerProb(ts, q, a)
		if pa == 0 {
			continue
		}
		expected += pa * mathx.Entropy(sc.posterior(ts, q, a))
	}
	return h0 - expected
}

// Benefit computes Definition 5 with the expected posterior entropy of
// Equation 8:
//
//	B(t_i) = H(s_i) − Σ_a H(r × M^(i)|a) · Pr(v^w = a | V).
func Benefit(ts *TaskState, q model.QualityVector) float64 {
	var sc Scratch
	return BenefitWith(ts, q, &sc)
}

// BatchBenefitEnum computes the expected benefit B(T_k) of a fixed batch by
// direct enumeration over all answer combinations Φ (Equations 9–10). Its
// cost is Π ℓ_i; it exists as the correctness oracle for Theorem 4 and is
// exercised only in tests and ablation benchmarks.
func BatchBenefitEnum(batch []*TaskState, q model.QualityVector) float64 {
	if len(batch) == 0 {
		return 0
	}
	var total float64
	combo := make([]int, len(batch))
	var rec func(i int, prob float64, benefit float64)
	rec = func(i int, prob float64, benefit float64) {
		if prob == 0 {
			return
		}
		if i == len(batch) {
			total += prob * benefit
			return
		}
		ts := batch[i]
		for a := range ts.S {
			pa := AnswerProb(ts, q, a)
			combo[i] = a
			db := mathx.Entropy(ts.S) - mathx.Entropy(PosteriorS(ts, q, a))
			rec(i+1, prob*pa, benefit+db)
		}
	}
	rec(0, 1, 0)
	return total
}
