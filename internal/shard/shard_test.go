package shard

import (
	"fmt"
	"testing"
)

func TestIndexInRangeAndDeterministic(t *testing.T) {
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("worker-%d", i)
		got := Index(k, Count)
		if got < 0 || got >= Count {
			t.Fatalf("Index(%q) = %d out of [0,%d)", k, got, Count)
		}
		if again := Index(k, Count); again != got {
			t.Fatalf("Index(%q) not deterministic: %d vs %d", k, got, again)
		}
	}
}

func TestIndexSpreads(t *testing.T) {
	seen := make(map[int]int)
	for i := 0; i < 32*32; i++ {
		seen[Index(fmt.Sprintf("w%d", i), Count)]++
	}
	if len(seen) < Count/2 {
		t.Errorf("1024 sequential keys hit only %d/%d shards", len(seen), Count)
	}
}
