// Package shard provides the string-key shard selection used by the
// concurrent serving maps (per-worker state in core, per-worker statistics
// in truth). Centralizing the hash keeps every sharded map in the repo
// partitioning identically.
package shard

// Count is the default shard count for per-worker maps: wide enough that
// dozens of concurrent workers rarely collide, small enough that iterating
// all shards (e.g. to gather golden answers) stays cheap. Power of two so
// Index folds with a mask.
const Count = 32

// Index returns the shard index for key within n shards using FNV-1a.
// n must be a power of two.
func Index(key string, n int) int {
	var h uint32 = 2166136261 // FNV offset basis
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619 // FNV prime
	}
	return int(h) & (n - 1)
}
