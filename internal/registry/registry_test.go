package registry

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"docs/internal/core"
	"docs/internal/model"
	"docs/internal/truth"
)

// synthTasks builds n two-choice tasks with precomputed one-hot domain
// vectors (skipping DVE) and ground truth i%2. IDs and domain assignment
// are offset so different campaigns get genuinely different task sets.
func synthTasks(m, n, offset int) []*model.Task {
	tasks := make([]*model.Task, n)
	for i := range tasks {
		dom := make(model.DomainVector, m)
		dom[(i+offset)%m] = 1
		tasks[i] = &model.Task{
			ID: i, Text: fmt.Sprintf("c%d task %d", offset, i), Choices: []string{"a", "b"},
			Domain: dom, Truth: (i + offset) % 2, TrueDomain: model.NoTruth,
		}
	}
	return tasks
}

// profile pushes worker w through sys's golden gauntlet with perfect
// answers and returns the golden answers in the order they were submitted.
func profile(t *testing.T, sys *core.System, w string) []model.Answer {
	t.Helper()
	goldenSet := map[int]bool{}
	for _, id := range sys.GoldenTasks() {
		goldenSet[id] = true
	}
	var answered []model.Answer
	for len(answered) < len(goldenSet) {
		got, err := sys.Request(w, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			t.Fatalf("worker %s: empty batch mid-gauntlet (%d/%d)", w, len(answered), len(goldenSet))
		}
		for _, tk := range got {
			if !goldenSet[tk.ID] {
				t.Fatalf("worker %s: served regular task %d before profiling", w, tk.ID)
			}
			if err := sys.Submit(w, tk.ID, tk.Truth); err != nil {
				t.Fatal(err)
			}
			answered = append(answered, model.Answer{Worker: w, Task: tk.ID, Choice: tk.Truth})
		}
	}
	return answered
}

// goldenTasksOf returns the campaign's golden tasks in publication order.
func goldenTasksOf(sys *core.System, tasks []*model.Task) []*model.Task {
	goldenSet := map[int]bool{}
	for _, id := range sys.GoldenTasks() {
		goldenSet[id] = true
	}
	var out []*model.Task
	for _, tk := range tasks {
		if goldenSet[tk.ID] {
			out = append(out, tk)
		}
	}
	return out
}

func sameStats(a, b *truth.Stats) bool {
	if len(a.Q) != len(b.Q) || len(a.U) != len(b.U) {
		return false
	}
	for k := range a.Q {
		if math.Float64bits(a.Q[k]) != math.Float64bits(b.Q[k]) ||
			math.Float64bits(a.U[k]) != math.Float64bits(b.U[k]) {
			return false
		}
	}
	return true
}

func TestValidateName(t *testing.T) {
	for _, ok := range []string{"a", "default", "A-1", "x_y", "0", "camp-2026_B"} {
		if err := ValidateName(ok); err != nil {
			t.Errorf("ValidateName(%q) = %v, want nil", ok, err)
		}
	}
	long := make([]byte, MaxNameLen+1)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", ".", "..", "a/b", "a\\b", "-x", "_x", "a b", "é", "a.b", string(long), "a\x00b"} {
		if err := ValidateName(bad); err == nil {
			t.Errorf("ValidateName(%q) = nil, want error", bad)
		}
	}
}

func TestRegistryLifecycle(t *testing.T) {
	root := t.TempDir()
	cfg := Config{WALDir: root, GoldenCount: -1, HITSize: 4, AnswersPerTask: 2, RerunEvery: -1, CheckpointEvery: -1}
	reg, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := reg.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(unknown) = %v, want ErrNotFound", err)
	}
	if _, err := reg.Create("bad/name"); err == nil {
		t.Error("Create with illegal name succeeded")
	}

	a, err := reg.Create("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create("alpha"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate Create = %v, want ErrExists", err)
	}
	// Names that differ only by case would share a directory on
	// case-insensitive filesystems, so they collide everywhere.
	if _, err := reg.Create("Alpha"); !errors.Is(err, ErrExists) {
		t.Errorf("case-colliding Create = %v, want ErrExists", err)
	}
	m := a.Domains().Size()
	if err := a.Publish(synthTasks(m, 8, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create("beta"); err != nil {
		t.Fatal(err)
	}

	got, err := reg.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Submit("w0", 0, 0); err != nil {
		t.Fatal(err)
	}

	infos := reg.List()
	if len(infos) != 2 || infos[0].Name != "alpha" || infos[1].Name != "beta" {
		t.Fatalf("List = %+v, want alpha,beta", infos)
	}
	if !infos[0].Published || infos[0].Answers != 1 {
		t.Errorf("alpha info = %+v, want published with 1 answer", infos[0])
	}
	if infos[1].Published {
		t.Errorf("beta info = %+v, want unpublished", infos[1])
	}

	// Archive alpha: no longer servable, marker on disk.
	if err := reg.Archive("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get("alpha"); !errors.Is(err, ErrArchived) {
		t.Errorf("Get(archived) = %v, want ErrArchived", err)
	}
	if err := reg.Archive("alpha"); !errors.Is(err, ErrArchived) {
		t.Errorf("double Archive = %v, want ErrArchived", err)
	}
	if _, err := reg.Create("alpha"); !errors.Is(err, ErrExists) {
		t.Errorf("Create over archived = %v, want ErrExists", err)
	}
	if infos := reg.List(); !infos[0].Archived || !infos[0].Published || infos[0].Answers != 1 {
		t.Errorf("archived info = %+v, want archived snapshot of serving state", infos[0])
	}
	if _, err := os.Stat(filepath.Join(root, campaignsDir, "alpha", archivedMarker)); err != nil {
		t.Errorf("archive marker missing: %v", err)
	}

	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get("beta"); !errors.Is(err, ErrClosed) {
		t.Errorf("Get after Close = %v, want ErrClosed", err)
	}

	// Reboot: beta comes back live (nothing published, nothing to replay),
	// alpha stays archived and is not replayed.
	reg2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	infos = reg2.List()
	if len(infos) != 2 {
		t.Fatalf("rebooted List = %+v, want 2 campaigns", infos)
	}
	if !infos[0].Archived || infos[0].Recovered != 0 {
		t.Errorf("alpha after reboot = %+v, want archived, 0 replayed", infos[0])
	}
	if infos[1].Archived {
		t.Errorf("beta after reboot = %+v, want live", infos[1])
	}
	if _, err := reg2.Get("alpha"); !errors.Is(err, ErrArchived) {
		t.Errorf("Get(archived) after reboot = %v, want ErrArchived", err)
	}
}

// TestRegistryRebootRecoversAllCampaigns publishes and serves several
// campaigns, closes the registry gracefully, and boots a second one over
// the same root: every campaign must come back published with its answers.
func TestRegistryRebootRecoversAllCampaigns(t *testing.T) {
	root := t.TempDir()
	cfg := Config{WALDir: root, GoldenCount: -1, HITSize: 4, AnswersPerTask: 3, RerunEvery: -1, CheckpointEvery: -1}
	reg, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"a1", "a2", "a3"}
	answers := map[string]int64{}
	for i, name := range names {
		sys, err := reg.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Publish(synthTasks(sys.Domains().Size(), 6+i, i)); err != nil {
			t.Fatal(err)
		}
		for w := 0; w < 2+i; w++ {
			if err := sys.Submit(fmt.Sprintf("w%d", w), w%3, 0); err != nil {
				t.Fatal(err)
			}
			answers[name]++
		}
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	reg2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	for _, info := range reg2.List() {
		if !info.Published {
			t.Errorf("campaign %s not published after reboot", info.Name)
		}
		if info.Answers != answers[info.Name] {
			t.Errorf("campaign %s recovered %d answers, want %d", info.Name, info.Answers, answers[info.Name])
		}
		if info.Recovered == 0 {
			t.Errorf("campaign %s replayed no records", info.Name)
		}
	}
}

// TestCrossCampaignWorkerCarryover is the paper's returning-worker story:
// a worker profiled on campaign A's golden tasks must be served real
// (non-golden) tasks on their FIRST request in campaign B, with their
// domain-quality vector carried over through the shared store — and the
// store must hold exactly one profiling merge for them.
func TestCrossCampaignWorkerCarryover(t *testing.T) {
	reg, err := Open(Config{GoldenCount: 4, HITSize: 4, AnswersPerTask: 4, RerunEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	a, err := reg.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	m := a.Domains().Size()
	tasksA := synthTasks(m, 20, 0)
	if err := a.Publish(tasksA); err != nil {
		t.Fatal(err)
	}
	goldenAnswers := profile(t, a, "w")

	// The store now holds exactly the one profiling merge, bit for bit.
	want := truth.EstimateFromGolden(goldenTasksOf(a, tasksA), goldenAnswers, m)
	got, ok := reg.Store().Worker("w")
	if !ok {
		t.Fatal("profiling did not reach the shared store")
	}
	if !sameStats(got, want) {
		t.Fatal("store stats differ from the single profiling estimate")
	}

	b, err := reg.Create("b")
	if err != nil {
		t.Fatal(err)
	}
	tasksB := synthTasks(m, 20, 7)
	if err := b.Publish(tasksB); err != nil {
		t.Fatal(err)
	}
	goldenB := map[int]bool{}
	for _, id := range b.GoldenTasks() {
		goldenB[id] = true
	}
	if len(goldenB) == 0 {
		t.Fatal("campaign b selected no golden tasks")
	}

	// First request in b: real tasks immediately, no golden gauntlet.
	batch, err := b.Request("w", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) == 0 {
		t.Fatal("profiled worker got an empty first batch in campaign b")
	}
	for _, tk := range batch {
		if goldenB[tk.ID] {
			t.Fatalf("worker profiled in campaign a was served golden task %d in campaign b", tk.ID)
		}
	}
	// And the carried-over quality is the store's, not the default prior.
	q := b.WorkerQuality("w")
	for k := range q {
		if math.Float64bits(q[k]) != math.Float64bits(want.Q[k]) {
			t.Fatalf("campaign b sees quality[%d]=%v, store has %v", k, q[k], want.Q[k])
		}
	}

	// A fresh worker in b still runs the gauntlet — carryover is per
	// worker, not per campaign.
	fresh, err := b.Request("x", 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range fresh {
		if !goldenB[tk.ID] {
			t.Fatalf("fresh worker served regular task %d before profiling", tk.ID)
		}
	}

	// Serving w real tasks in b must not touch their store entry: merges
	// happen at profiling (and Results), never on the serving path.
	for _, tk := range batch {
		if err := b.Submit("w", tk.ID, tk.Truth); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := reg.Store().Worker("w")
	if !sameStats(after, want) {
		t.Fatal("serving regular tasks in campaign b changed the worker's store stats")
	}
}

// TestConcurrentCampaignsMergeStoreOnce runs several campaigns and worker
// goroutines at once (run with -race): each worker is profiled in one home
// campaign, then serves everywhere. Every worker's shared-store entry must
// equal exactly their single profiling merge — no double counting, no lost
// updates, under full concurrency.
func TestConcurrentCampaignsMergeStoreOnce(t *testing.T) {
	reg, err := Open(Config{GoldenCount: 4, HITSize: 4, AnswersPerTask: 8, RerunEvery: 25})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	const nCampaigns, nWorkers = 4, 12
	names := make([]string, nCampaigns)
	allTasks := make(map[string][]*model.Task, nCampaigns)
	var m int
	for i := range names {
		names[i] = fmt.Sprintf("c%d", i)
		sys, err := reg.Create(names[i])
		if err != nil {
			t.Fatal(err)
		}
		m = sys.Domains().Size()
		allTasks[names[i]] = synthTasks(m, 30, 3*i)
		if err := sys.Publish(allTasks[names[i]]); err != nil {
			t.Fatal(err)
		}
	}

	type profiled struct {
		home    string
		answers []model.Answer
	}
	results := make([]profiled, nWorkers)
	var wg sync.WaitGroup
	errs := make(chan error, nWorkers)
	for i := 0; i < nWorkers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := fmt.Sprintf("w%d", i)
			home := names[i%nCampaigns]
			sys, err := reg.Get(home)
			if err != nil {
				errs <- err
				return
			}
			// Golden gauntlet in the home campaign (perfect answers).
			goldenSet := map[int]bool{}
			for _, id := range sys.GoldenTasks() {
				goldenSet[id] = true
			}
			var answers []model.Answer
			for len(answers) < len(goldenSet) {
				got, err := sys.Request(w, 4)
				if err != nil {
					errs <- err
					return
				}
				for _, tk := range got {
					if !goldenSet[tk.ID] {
						errs <- fmt.Errorf("worker %s: regular task %d before profiling", w, tk.ID)
						return
					}
					if err := sys.Submit(w, tk.ID, tk.Truth); err != nil {
						errs <- err
						return
					}
					answers = append(answers, model.Answer{Worker: w, Task: tk.ID, Choice: tk.Truth})
				}
			}
			results[i] = profiled{home: home, answers: answers}
			// Then serve one batch in EVERY campaign, concurrently with the
			// other workers' gauntlets and serving.
			for _, name := range names {
				other, err := reg.Get(name)
				if err != nil {
					errs <- err
					return
				}
				got, err := other.Request(w, 3)
				if err != nil {
					errs <- err
					return
				}
				for _, tk := range got {
					if err := other.Submit(w, tk.ID, tk.Truth); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for i := 0; i < nWorkers; i++ {
		w := fmt.Sprintf("w%d", i)
		sys, err := reg.Get(results[i].home)
		if err != nil {
			t.Fatal(err)
		}
		want := truth.EstimateFromGolden(goldenTasksOf(sys, allTasks[results[i].home]), results[i].answers, m)
		got, ok := reg.Store().Worker(w)
		if !ok {
			t.Fatalf("worker %s missing from the shared store", w)
		}
		if !sameStats(got, want) {
			t.Fatalf("worker %s: store stats differ from their single profiling merge (double-merge or lost update)", w)
		}
	}
}

// TestMemoryOnlyRegistry keeps everything in RAM: campaigns serve, the
// shared store still carries workers across campaigns, nothing touches
// disk.
func TestMemoryOnlyRegistry(t *testing.T) {
	reg, err := Open(Config{GoldenCount: 4, HITSize: 4, AnswersPerTask: 4, RerunEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := reg.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	m := a.Domains().Size()
	if err := a.Publish(synthTasks(m, 16, 0)); err != nil {
		t.Fatal(err)
	}
	profile(t, a, "w")
	b, err := reg.Create("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(synthTasks(m, 16, 5)); err != nil {
		t.Fatal(err)
	}
	goldenB := map[int]bool{}
	for _, id := range b.GoldenTasks() {
		goldenB[id] = true
	}
	batch, err := b.Request("w", 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range batch {
		if goldenB[tk.ID] {
			t.Fatal("memory-only registry lost the cross-campaign profile")
		}
	}
	if err := reg.Archive("a"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentBootPreservesEveryCampaign pins the concurrent recoverAll:
// many campaigns booted in parallel must each recover their own state
// exactly (fingerprints compared against the pre-shutdown systems) and the
// boot must remain a pure function of each campaign's log plus the shared
// store — the safety argument for replaying concurrently at all. Run under
// -race in CI, this is also the data-race gate for the parallel boot path.
func TestConcurrentBootPreservesEveryCampaign(t *testing.T) {
	root := t.TempDir()
	reg, err := Open(Config{WALDir: root, GoldenCount: 3, HITSize: 4, AnswersPerTask: 3, RerunEvery: 15})
	if err != nil {
		t.Fatal(err)
	}
	const nCampaigns = 6
	want := make(map[string]string, nCampaigns)
	answers := make(map[string]int64, nCampaigns)
	for c := 0; c < nCampaigns; c++ {
		name := fmt.Sprintf("c%d", c)
		sys, err := reg.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Publish(synthTasks(26, 20, 3*c)); err != nil {
			t.Fatal(err)
		}
		// One distinct worker per campaign: the shared store carries
		// profiles across campaigns, and this test wants each campaign to
		// exercise its own golden gauntlet.
		w := fmt.Sprintf("boot-w%d", c)
		profile(t, sys, w)
		for i := 0; i < 8; i++ {
			got, err := sys.Request(w, 4)
			if err != nil {
				t.Fatal(err)
			}
			for _, tk := range got {
				if err := sys.Submit(w, tk.ID, tk.Truth); err != nil {
					t.Fatal(err)
				}
			}
		}
		answers[name] = sys.AnswerCount()
	}
	// Fingerprints are captured only after EVERY campaign has been driven:
	// the comparator includes the shared store, which keeps absorbing
	// profiling merges as later campaigns run — a snapshot taken mid-way
	// would differ from the recovered state for store reasons, not
	// recovery reasons.
	for name := range answers {
		sys, err := reg.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = sys.Fingerprint()
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Config{WALDir: root, GoldenCount: 3, HITSize: 4, AnswersPerTask: 3, RerunEvery: 15})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for name, fp := range want {
		sys, err := re.Get(name)
		if err != nil {
			t.Fatalf("campaign %s: %v", name, err)
		}
		if got := sys.AnswerCount(); got != answers[name] {
			t.Fatalf("campaign %s: recovered %d answers, want %d", name, got, answers[name])
		}
		if got := sys.Fingerprint(); got != fp {
			t.Fatalf("campaign %s: concurrent boot recovered a different state", name)
		}
	}
}
