package registry

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"docs/internal/core"
	"docs/internal/mathx"
	"docs/internal/model"
)

// copyTree copies a directory tree with plain file reads — the serial
// workload is quiescent between acknowledged operations, so the copy is
// exactly the image a kill -9 would leave at that boundary.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRegistryLiveVsRecoveredExact is the multi-campaign face of the
// live-vs-recovered contract: two campaigns interleave over the shared
// store with an overlapping worker population, so one campaign's profiling
// merges keep MOVING the store while the other seeds workers from it. The
// historical ~1e-7 drift lived exactly here — replay re-read the store at
// its final state where the live system read it at seed time. Since seeds
// are restored from each campaign's own log, a registry booted over a copy
// of the durable tree must reproduce every campaign's live fingerprint
// bit-for-bit at every acknowledged boundary.
func TestRegistryLiveVsRecoveredExact(t *testing.T) {
	root := t.TempDir()
	reg, err := Open(crashConfig(root))
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"alpha", "beta"}
	goldenSets := make(map[string]map[int]bool, len(names))
	systems := make(map[string]*core.System, len(names))
	for i, name := range names {
		sys, err := reg.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		m := sys.Domains().Size()
		if err := sys.Publish(synthTasks(m, 12, i*3)); err != nil {
			t.Fatal(err)
		}
		set := map[int]bool{}
		for _, id := range sys.GoldenTasks() {
			set[id] = true
		}
		goldenSets[name] = set
		systems[name] = sys
	}

	type capturePoint struct {
		fps map[string]string // live fingerprint per campaign
		dir string            // copy of the whole durable tree
	}
	var caps []capturePoint
	capture := func() {
		dir := filepath.Join(root, "..", fmt.Sprintf("img-%03d", len(caps)))
		copyTree(t, root, dir)
		fps := make(map[string]string, len(names))
		for _, name := range names {
			fps[name] = systems[name].Fingerprint()
		}
		caps = append(caps, capturePoint{fps: fps, dir: dir})
	}

	// Interleave: alternate campaigns per request so profiling merges from
	// one land between the other's seeds. Capture after every acknowledged
	// submit round.
	r := mathx.NewRand(31)
	idle := map[string]int{}
	for round := 0; ; round++ {
		active := false
		for _, name := range names {
			if idle[name] > 30 {
				continue
			}
			active = true
			sys := systems[name]
			w := fmt.Sprintf("w%d", int(r.Float64()*6))
			got, err := sys.Request(w, crashKnobs.hit)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) == 0 {
				idle[name]++
				continue
			}
			idle[name] = 0
			for _, tk := range got {
				c := tk.Truth
				if c == model.NoTruth {
					c = 0
				} else if !goldenSets[name][tk.ID] && r.Float64() >= 0.8 {
					c = 1 - c
				}
				if err := sys.Submit(w, tk.ID, c); err != nil {
					t.Fatal(err)
				}
			}
			capture()
		}
		if !active {
			break
		}
	}
	liveStore := storePrint(reg.Store())
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	if len(caps) < 10 {
		t.Fatalf("workload produced only %d captures", len(caps))
	}

	for i, cp := range caps {
		booted, err := Open(crashConfig(cp.dir))
		if err != nil {
			t.Fatalf("capture %d: boot: %v", i, err)
		}
		for _, name := range names {
			sys, err := booted.Get(name)
			if err != nil {
				t.Fatalf("capture %d: %v", i, err)
			}
			if got := sys.Fingerprint(); got != cp.fps[name] {
				t.Fatalf("capture %d: campaign %s recovered != live\n%s",
					i, name, core.DiffFingerprints(got, cp.fps[name], 8))
			}
		}
		if err := booted.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// The final image IS the clean shutdown state: its store must match the
	// live store bit-for-bit too (fingerprints above already cover it, but
	// the direct check keeps the store comparison independent of the
	// fingerprint format).
	final, err := Open(crashConfig(caps[len(caps)-1].dir))
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	if got := storePrint(final.Store()); got != liveStore {
		t.Fatalf("final image store differs from live store\ngot:  %.300s\nlive: %.300s", got, liveStore)
	}
}
