package registry

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"docs/internal/core"
	"docs/internal/mathx"
	"docs/internal/model"
)

// The hibernation lifecycle suite. Hibernate/wake cycles must be invisible
// at the bit level: a woken campaign's state is its serial-replay state,
// which must equal a never-hibernated campaign that served the identical
// traffic. The lockstep harness below runs exactly that experiment — two
// registries, one interleaving hibernations, one never hibernating, fed
// the same serial workload — and compares fingerprints (which cover the
// full inference state AND the shared worker store) at every acknowledged
// step. TestCampaignDeterminism in internal/core pins the premise that a
// serial trace is reproducible, so any divergence here is hibernation's.

// lockstep is a pair of campaigns — one in the hibernating registry, one
// in the reference — driven with identical operations.
type lockstep struct {
	name   string
	reg    *Registry // hibernates
	ref    *Registry // never hibernates
	golden map[int]bool
}

func (l *lockstep) systems(t *testing.T) (*core.System, *core.System) {
	t.Helper()
	sysA, err := l.reg.Get(l.name) // wakes if hibernated
	if err != nil {
		t.Fatal(err)
	}
	sysB, err := l.ref.Get(l.name)
	if err != nil {
		t.Fatal(err)
	}
	return sysA, sysB
}

// step issues one Request/Submit round for one worker against both
// registries and asserts the assignments and resulting fingerprints are
// identical. Returns how many answers were submitted (0 = campaign idle).
func (l *lockstep) step(t *testing.T, w string, flip func() bool) int {
	t.Helper()
	sysA, sysB := l.systems(t)
	gotA, err := sysA.Request(w, crashKnobs.hit)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := sysB.Request(w, crashKnobs.hit)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotA) != len(gotB) {
		t.Fatalf("campaign %s worker %s: hibernating registry assigned %d tasks, reference %d",
			l.name, w, len(gotA), len(gotB))
	}
	for i := range gotA {
		if gotA[i].ID != gotB[i].ID {
			t.Fatalf("campaign %s worker %s: assignment diverged at slot %d: task %d vs %d",
				l.name, w, i, gotA[i].ID, gotB[i].ID)
		}
	}
	for _, tk := range gotA {
		c := tk.Truth
		if c == model.NoTruth {
			c = 0
		} else if !l.golden[tk.ID] && flip() {
			c = 1 - c
		}
		if err := sysA.Submit(w, tk.ID, c); err != nil {
			t.Fatal(err)
		}
		if err := sysB.Submit(w, tk.ID, c); err != nil {
			t.Fatal(err)
		}
	}
	if fpA, fpB := sysA.Fingerprint(), sysB.Fingerprint(); fpA != fpB {
		t.Fatalf("campaign %s worker %s: fingerprint diverged after submit round\n%s",
			l.name, w, core.DiffFingerprints(fpA, fpB, 8))
	}
	return len(gotA)
}

// TestHibernateWakeFingerprintExact is the randomized property test:
// several campaigns interleave traffic with hibernate/wake cycles at
// random points, and after EVERY acknowledged submit round the hibernating
// registry's fingerprint must be bit-identical to the never-hibernated
// reference's. Wakes after a clean hibernate must also be O(suffix):
// snapshot restored, zero records replayed.
func TestHibernateWakeFingerprintExact(t *testing.T) {
	regRoot, refRoot := t.TempDir(), t.TempDir()
	reg, err := Open(crashConfig(regRoot))
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ref, err := Open(crashConfig(refRoot))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	names := []string{"alpha", "beta", "gamma"}
	steps := make(map[string]*lockstep, len(names))
	for i, name := range names {
		sysA, err := reg.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		sysB, err := ref.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		m := sysA.Domains().Size()
		tasks := synthTasks(m, 20+4*i, 3*i)
		if err := sysA.Publish(tasks); err != nil {
			t.Fatal(err)
		}
		if err := sysB.Publish(synthTasks(m, 20+4*i, 3*i)); err != nil {
			t.Fatal(err)
		}
		golden := map[int]bool{}
		for _, id := range sysA.GoldenTasks() {
			golden[id] = true
		}
		// Golden selection is deterministic, so the reference must have
		// picked the identical set — the lockstep premise.
		refGolden := sysB.GoldenTasks()
		if len(refGolden) != len(golden) {
			t.Fatalf("campaign %s: golden sets differ in size", name)
		}
		for _, id := range refGolden {
			if !golden[id] {
				t.Fatalf("campaign %s: golden task %d only in reference", name, id)
			}
		}
		steps[name] = &lockstep{name: name, reg: reg, ref: ref, golden: golden}
	}

	r := mathx.NewRand(2016)
	flip := func() bool { return r.Float64() >= 0.85 }
	idle := map[string]int{}
	hibernations, cleanWakes := 0, 0
	for op := 0; ; op++ {
		active := false
		for _, name := range names {
			if idle[name] > 40 {
				continue
			}
			active = true
			w := fmt.Sprintf("w%d", int(r.Float64()*7))
			if n := steps[name].step(t, w, flip); n == 0 {
				idle[name]++
			} else {
				idle[name] = 0
			}
			// Randomly hibernate this campaign mid-workload; the next step
			// wakes it. Only the hibernating registry transitions — the
			// reference keeps serving live.
			if r.Float64() < 0.12 {
				if err := reg.Hibernate(name); err != nil {
					t.Fatalf("hibernate %s: %v", name, err)
				}
				hibernations++
				if reg.Resident(name) {
					t.Fatalf("campaign %s still resident after Hibernate", name)
				}
				// A clean hibernate's wake restores the final snapshot and
				// replays nothing — the O(suffix) contract with suffix 0.
				sysA, err := reg.Get(name)
				if err != nil {
					t.Fatal(err)
				}
				if info := sysA.Recovery(); info.SnapshotUsed && info.Records == 0 {
					cleanWakes++
				} else {
					t.Fatalf("campaign %s: wake after clean hibernate replayed %d records (snapshot used: %v, rejected: %q)",
						name, info.Records, info.SnapshotUsed, info.SnapshotRejected)
				}
				sysB, err := ref.Get(name)
				if err != nil {
					t.Fatal(err)
				}
				if fpA, fpB := sysA.Fingerprint(), sysB.Fingerprint(); fpA != fpB {
					t.Fatalf("campaign %s: woken fingerprint differs from never-hibernated reference\n%s",
						name, core.DiffFingerprints(fpA, fpB, 8))
				}
			}
		}
		if !active {
			break
		}
	}
	if hibernations < 5 {
		t.Fatalf("workload only exercised %d hibernate/wake cycles", hibernations)
	}
	if total, _, p99 := reg.WakeStats(); total != int64(cleanWakes) || p99 < 0 {
		t.Fatalf("WakeStats total = %d, want %d", total, cleanWakes)
	}
	// Final census: everything is live again (each hibernate was followed
	// by a wake) and the reference never hibernated at all.
	if live, hib, arch := reg.Counts(); live != len(names) || hib != 0 || arch != 0 {
		t.Fatalf("final counts = %d/%d/%d, want %d/0/0", live, hib, arch, len(names))
	}
	if total, _, _ := ref.WakeStats(); total != 0 {
		t.Fatalf("reference registry woke %d campaigns", total)
	}
}

// TestWakeStampedeSingleFlight floods a cold campaign with concurrent
// requests: exactly one reactivation may run (the rest queue on the
// single-flight guard and share its core), every request must succeed, and
// the woken state must be the pre-hibernation state. Run under -race by
// the registry CI suite.
func TestWakeStampedeSingleFlight(t *testing.T) {
	root := t.TempDir()
	reg, err := Open(crashConfig(root))
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	sys, err := reg.Create("cold")
	if err != nil {
		t.Fatal(err)
	}
	m := sys.Domains().Size()
	if err := sys.Publish(synthTasks(m, 24, 0)); err != nil {
		t.Fatal(err)
	}
	driveInterleaved(t, reg, []string{"cold"}, 5, 11)
	before := sys.Fingerprint()
	answers := sys.AnswerCount()
	if err := reg.Hibernate("cold"); err != nil {
		t.Fatal(err)
	}

	const stampede = 32
	var (
		wg   sync.WaitGroup
		got  [stampede]*core.System
		errs [stampede]error
	)
	start := make(chan struct{})
	for i := 0; i < stampede; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			got[i], errs[i] = reg.Get("cold")
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 0; i < stampede; i++ {
		if errs[i] != nil {
			t.Fatalf("stampede request %d failed: %v", i, errs[i])
		}
		if got[i] != got[0] {
			t.Fatalf("stampede request %d got a different core than request 0 — wake ran more than once", i)
		}
	}
	if total, _, _ := reg.WakeStats(); total != 1 {
		t.Fatalf("stampede triggered %d reactivations, want exactly 1", total)
	}
	if got[0].AnswerCount() != answers {
		t.Fatalf("woken campaign has %d answers, want %d", got[0].AnswerCount(), answers)
	}
	if after := got[0].Fingerprint(); after != before {
		t.Fatalf("woken fingerprint differs from pre-hibernation state\n%s",
			core.DiffFingerprints(after, before, 8))
	}
}

// TestHibernateRaceNeverDropsAcknowledged races submit traffic against
// repeated hibernations. The contract: a Submit that returned nil (was
// acknowledged) is durable before the hibernate's final fsync, so the
// answer must exist after every wake; a Submit racing the drain may fail,
// but then it was never acknowledged. Run under -race by the registry CI
// suite.
func TestHibernateRaceNeverDropsAcknowledged(t *testing.T) {
	root := t.TempDir()
	cfg := crashConfig(root)
	cfg.AnswersPerTask = 2
	reg, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	sys, err := reg.Create("racy")
	if err != nil {
		t.Fatal(err)
	}
	m := sys.Domains().Size()
	if err := sys.Publish(synthTasks(m, 40, 1)); err != nil {
		t.Fatal(err)
	}
	// Profile the workers up front so the raced submits are all regular
	// answers — the population AnswerCount() counts (golden answers live
	// in the profiling path, not the answer log).
	for w := 0; w < 4; w++ {
		profile(t, sys, fmt.Sprintf("w%d", w))
	}

	var acked atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		idle := 0
		for w := 0; idle < 60; w++ {
			worker := fmt.Sprintf("w%d", w%4)
			sys, err := reg.Get("racy")
			if err != nil {
				idle++
				continue
			}
			got, err := sys.Request(worker, 3)
			if err != nil || len(got) == 0 {
				// A closed (mid-hibernate) core or a saturated campaign;
				// either way, try again on a fresh handle.
				idle++
				continue
			}
			for _, tk := range got {
				c := tk.Truth
				if c == model.NoTruth {
					c = 0
				}
				if err := sys.Submit(worker, tk.ID, c); err != nil {
					// Raced the drain: the answer was NOT acknowledged, so it
					// may or may not be durable — both are correct.
					break
				}
				acked.Add(1)
				idle = 0
			}
		}
	}()

	// Hibernate under fire. Each call drains in-flight WAL commits before
	// releasing memory, so every acknowledged answer is on disk when the
	// core goes away.
	for i := 0; i < 8; i++ {
		if err := reg.Hibernate("racy"); err != nil {
			// Snapshot verification can fail when submits race the drain
			// (documented: the campaign hibernates anyway, the wake replays
			// a longer suffix). Only config/lifecycle errors are fatal.
			if errors.Is(err, ErrNotFound) || errors.Is(err, ErrArchived) || errors.Is(err, ErrClosed) {
				t.Fatal(err)
			}
			t.Logf("hibernate %d (racing traffic, tolerated): %v", i, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	<-done

	final, err := reg.Get("racy")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := final.AnswerCount(), acked.Load(); got < want {
		t.Fatalf("woken campaign has %d answers but %d were acknowledged — an acked answer was dropped", got, want)
	}
}

// TestLazyBootAndLRUCap covers the density mechanics: a capped registry
// lists every campaign at boot without replaying any, wakes them on
// demand bit-identically, and hibernates the least-recently-used campaign
// when the resident set exceeds the cap.
func TestLazyBootAndLRUCap(t *testing.T) {
	root := t.TempDir()
	reg, err := Open(crashConfig(root))
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"c0", "c1", "c2", "c3", "c4", "c5"}
	for i, name := range names {
		sys, err := reg.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Publish(synthTasks(sys.Domains().Size(), 10+2*i, i)); err != nil {
			t.Fatal(err)
		}
	}
	driveInterleaved(t, reg, names, 6, 5)
	fps := make(map[string]string, len(names))
	counts := make(map[string]int64, len(names))
	for _, name := range names {
		sys, err := reg.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		fps[name] = sys.Fingerprint()
		counts[name] = sys.AnswerCount()
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := crashConfig(root)
	cfg.MaxLiveCampaigns = 2
	capped, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer capped.Close()
	// Lazy boot: everything is listed, nothing is resident, no replay ran.
	if live, hib, arch := capped.Counts(); live != 0 || hib != len(names) || arch != 0 {
		t.Fatalf("cold boot counts = %d/%d/%d, want 0/%d/0", live, hib, arch, len(names))
	}
	for _, info := range capped.List() {
		if !info.Hibernated || info.Recovered != 0 {
			t.Fatalf("cold boot: campaign %s hibernated=%v recovered=%d, want true/0", info.Name, info.Hibernated, info.Recovered)
		}
	}

	// Touch campaigns in order: the resident set never exceeds the cap and
	// the victim is always the least recently used.
	for i, name := range names {
		sys, err := capped.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := sys.Fingerprint(); got != fps[name] {
			t.Fatalf("campaign %s: woken fingerprint differs from pre-shutdown live state\n%s",
				name, core.DiffFingerprints(got, fps[name], 8))
		}
		if got := sys.AnswerCount(); got != counts[name] {
			t.Fatalf("campaign %s: woke with %d answers, want %d", name, got, counts[name])
		}
		live, _, _ := capped.Counts()
		want := i + 1
		if want > 2 {
			want = 2
		}
		if live != want {
			t.Fatalf("after %d touches: %d live, want %d (cap 2)", i+1, live, want)
		}
		if i >= 2 {
			// The LRU victim is the campaign touched two steps ago... gone,
			// while the previous touch is still resident.
			if capped.Resident(names[i-2]) {
				t.Fatalf("after touching %s: %s still resident, should have been evicted", name, names[i-2])
			}
			if !capped.Resident(names[i-1]) {
				t.Fatalf("after touching %s: %s was evicted, but it is the MRU survivor", name, names[i-1])
			}
		}
	}
	if total, _, _ := capped.WakeStats(); total != int64(len(names)) {
		t.Fatalf("wakes = %d, want %d", total, len(names))
	}
}

// TestIdleSweepHibernates drives the HibernateAfter path with an injected
// clock: campaigns idle past the deadline hibernate on the next sweep,
// recently-touched ones survive it.
func TestIdleSweepHibernates(t *testing.T) {
	root := t.TempDir()
	var clock atomic.Int64
	base := time.Unix(1700000000, 0)
	clock.Store(0)
	cfg := crashConfig(root)
	cfg.HibernateAfter = time.Minute
	cfg.Clock = func() time.Time { return base.Add(time.Duration(clock.Load())) }
	reg, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	for _, name := range []string{"fresh", "stale"} {
		sys, err := reg.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Publish(synthTasks(sys.Domains().Size(), 8, 0)); err != nil {
			t.Fatal(err)
		}
	}
	driveInterleaved(t, reg, []string{"fresh", "stale"}, 3, 9)

	// Both idle 2 minutes; then "fresh" is touched just before the sweep.
	clock.Add(int64(2 * time.Minute))
	if _, err := reg.Get("fresh"); err != nil {
		t.Fatal(err)
	}
	if n := reg.SweepIdle(); n != 1 {
		t.Fatalf("sweep released %d campaigns, want 1 (only the stale one)", n)
	}
	if reg.Resident("stale") {
		t.Fatal("stale campaign still resident after idle sweep")
	}
	if !reg.Resident("fresh") {
		t.Fatal("freshly-touched campaign was swept")
	}
	// A second sweep with nothing idle is a no-op; waking the stale
	// campaign serves normally.
	if n := reg.SweepIdle(); n != 0 {
		t.Fatalf("second sweep released %d campaigns, want 0", n)
	}
	sys, err := reg.Get("stale")
	if err != nil {
		t.Fatal(err)
	}
	if sys.AnswerCount() == 0 {
		t.Fatal("woken campaign lost its answers")
	}
}

// TestHibernateLifecycleErrors pins the configuration and state-machine
// edges: hibernation demands durability, terminal states stay terminal,
// and a hibernated campaign archives without waking.
func TestHibernateLifecycleErrors(t *testing.T) {
	// Hibernation config without a WAL root must be refused outright.
	if _, err := Open(Config{MaxLiveCampaigns: 2}); err == nil {
		t.Fatal("Open accepted MaxLiveCampaigns without WALDir")
	}
	if _, err := Open(Config{HibernateAfter: time.Minute}); err == nil {
		t.Fatal("Open accepted HibernateAfter without WALDir")
	}

	// A memory-only registry cannot hibernate a campaign.
	mem, err := Open(Config{GoldenCount: -1, HITSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	if _, err := mem.Create("m"); err != nil {
		t.Fatal(err)
	}
	if err := mem.Hibernate("m"); err == nil {
		t.Fatal("memory-only registry hibernated a campaign")
	}

	root := t.TempDir()
	reg, err := Open(crashConfig(root))
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if err := reg.Hibernate("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("hibernate unknown = %v, want ErrNotFound", err)
	}
	sys, err := reg.Create("naps")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Publish(synthTasks(sys.Domains().Size(), 8, 2)); err != nil {
		t.Fatal(err)
	}
	driveInterleaved(t, reg, []string{"naps"}, 3, 3)
	if err := reg.Hibernate("naps"); err != nil {
		t.Fatal(err)
	}
	// Idempotent: hibernating a hibernated campaign is a no-op.
	if err := reg.Hibernate("naps"); err != nil {
		t.Fatalf("second hibernate = %v, want nil no-op", err)
	}
	// Archive without waking: the campaign's state is already durable, so
	// only the marker is written — and it must NOT come back resident.
	if err := reg.Archive("naps"); err != nil {
		t.Fatal(err)
	}
	if reg.Resident("naps") {
		t.Fatal("archiving a hibernated campaign woke it")
	}
	if err := reg.Hibernate("naps"); !errors.Is(err, ErrArchived) {
		t.Fatalf("hibernate archived = %v, want ErrArchived", err)
	}
	if _, err := reg.Get("naps"); !errors.Is(err, ErrArchived) {
		t.Fatalf("get archived = %v, want ErrArchived", err)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	// The marker survived: a reboot lists the campaign archived, not live.
	booted, err := Open(crashConfig(root))
	if err != nil {
		t.Fatal(err)
	}
	defer booted.Close()
	if _, err := booted.Get("naps"); !errors.Is(err, ErrArchived) {
		t.Fatalf("rebooted get archived = %v, want ErrArchived", err)
	}
	if live, hib, arch := booted.Counts(); arch != 1 || live+hib != 0 {
		t.Fatalf("rebooted counts = %d/%d/%d, want 0/0/1", live, hib, arch)
	}
}
