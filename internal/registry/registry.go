// Package registry hosts many named DOCS campaigns in one process, the
// multi-tenant deployment shape the paper implies: requesters come and go,
// each bringing their own task set (a campaign), while the worker crowd is
// shared. Each campaign is a full core.System — its own task set, golden
// selection, truth-inference state and WAL — but every campaign sees one
// shared long-run worker store, so a worker profiled on requester A's
// golden tasks starts requester B's campaign with their per-domain quality
// vector already in place (the paper's returning-worker semantics,
// Theorem 1) instead of re-running the golden gauntlet.
//
// # On-disk layout
//
// A registry opened with a WAL root owns that directory:
//
//	<root>/store.json         shared worker store (checkpoint + .delta log)
//	<root>/campaigns/<name>/  one WAL namespace per campaign
//	<root>/campaigns/<name>/archived   marker: campaign closed for good
//
// Open enumerates <root>/campaigns and recovers every non-archived
// campaign through core.Recover before serving. Replay order across
// campaigns is irrelevant by construction: the only store writes replay
// can perform are merge-once profiling repairs (store.MergeProfile, keyed
// by campaign-scoped profile IDs — each campaign's ProfileScope is its
// name), which are idempotent and campaign-local, and every other store
// read a campaign ever made is restored from its own log's seed records
// rather than re-read. Each campaign's recovered state is therefore a pure
// function of its own log plus the store file — the multi-campaign crash
// suite asserts exactly that, campaign by campaign, against serial
// references, and the live-vs-recovered suite asserts it against the
// pre-kill live system.
//
// # Lifecycle
//
// A campaign is in one of three states:
//
//	live ──(idle / LRU eviction / Hibernate)──▶ hibernated
//	live ◀──(any request: Get wakes it)──────── hibernated
//	live or hibernated ──(Archive)──▶ archived   (terminal)
//
// Create registers a live campaign and arms its WAL; the returned
// core.System serves Publish/Request/Submit/Results as usual. Hibernation
// releases an idle campaign's memory: its core is drained, a final state
// snapshot covering its whole log is written through the serial
// shadow-replica path, the WAL is fsynced and closed, and the serving
// core is dropped — the campaign's entire durable state stays on disk. A
// request to a hibernated campaign wakes it first: Get rebuilds the core
// via the ordinary recovery ladder (snapshot restore + WAL-suffix
// replay), under a per-campaign single-flight guard so a stampede of cold
// requests replays exactly once. Config.HibernateAfter hibernates
// campaigns idle past the deadline; Config.MaxLiveCampaigns bounds the
// resident set with least-recently-used eviction, and makes boot LAZY —
// namespaces are listed, not replayed, so a million-campaign root boots
// in O(readdir) and each campaign pays its replay on first touch.
// Hibernate/wake cycles are invisible at the bit level: the woken state
// is the serial-replay state, which the live-vs-recovered suite proves
// equal to the live fingerprint at every acknowledged boundary.
//
// Archive ends a campaign for good: its system (if resident) is drained
// and closed, an `archived` marker is written, and later boots list it
// without replaying. Close shuts the whole registry down gracefully
// (every resident campaign's WAL flushed and fsynced, then the shared
// store released).
package registry

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"docs/internal/core"
	"docs/internal/kb"
	"docs/internal/store"
	"docs/internal/wal"
)

// Errors the lifecycle methods return; test with errors.Is.
var (
	ErrNotFound = errors.New("registry: no such campaign")
	ErrArchived = errors.New("registry: campaign is archived")
	ErrExists   = errors.New("registry: campaign already exists")
	ErrClosed   = errors.New("registry: closed")
)

// MaxNameLen bounds campaign names; names become directory names, so the
// bound keeps paths portable.
const MaxNameLen = 64

// campaignsDir is the subdirectory of the WAL root holding one namespace
// per campaign.
const campaignsDir = "campaigns"

// archivedMarker is the file whose presence in a campaign's WAL namespace
// marks it archived; boots list but do not replay it.
const archivedMarker = "archived"

// storeFile is the shared worker store's default location under the WAL
// root.
const storeFile = "store.json"

// wakeWindow bounds the ring of recent wake latencies behind WakeStats.
const wakeWindow = 512

// Config configures a Registry. Campaign-tuning fields are applied to every
// campaign the registry creates or recovers.
type Config struct {
	// WALDir is the registry's root directory: the shared store and every
	// campaign's WAL namespace live under it, and Open replays whatever a
	// previous process left there. Empty keeps the whole registry
	// memory-only (campaigns are not durable and vanish with the process).
	WALDir string
	// Store is the shared worker store. Nil lets the registry open one:
	// at StorePath if set, else at <WALDir>/store.json when WALDir is set
	// (recovery correctness wants the store persistent — see the package
	// comment), else memory-only. A caller-provided store is never closed
	// by the registry.
	Store *store.Store
	// StorePath overrides the shared store location when Store is nil.
	StorePath string
	// KB is the knowledge base shared by every campaign; nil selects the
	// curated default.
	KB *kb.KB

	// MaxLiveCampaigns caps how many campaigns are resident (live) at
	// once. Past the cap the least-recently-touched live campaign is
	// hibernated, and boot becomes lazy: Open lists every namespace but
	// replays none — each campaign wakes on its first request. Requires
	// WALDir (a memory-only campaign released from memory would be
	// lost). 0 means unlimited: every campaign boots and stays live, the
	// pre-hibernation behavior.
	MaxLiveCampaigns int
	// HibernateAfter hibernates any live campaign that has not been
	// touched (Get/Create) for this long. Requires WALDir. 0 disables
	// idle hibernation.
	HibernateAfter time.Duration
	// Clock overrides time.Now for idle accounting and wake timing —
	// deterministic hibernation tests inject a fake clock here. Nil uses
	// the real clock.
	Clock func() time.Time

	// Per-campaign tuning, passed through to core.Config.
	GoldenCount     int
	HITSize         int
	AnswersPerTask  int
	RerunEvery      int
	AsyncRerun      bool
	CheckpointEvery int
	SnapshotEvery   int
	WALSegmentBytes int64
	WALSync         wal.SyncPolicy
	LeaseTTL        time.Duration
}

// Info describes one campaign in List output.
type Info struct {
	Name string
	// Archived campaigns are closed for good: listed, never served or
	// replayed.
	Archived bool
	// Hibernated campaigns are durable but not resident: the next request
	// wakes them.
	Hibernated bool
	// Published and Answers are the campaign's serving state — for a
	// hibernated or archived campaign, its state when it left memory this
	// process, or zero when it has not been resident this boot (cold logs
	// are not replayed, so their counters are unknown until first touch).
	Published bool
	Answers   int64
	// Recovered is how many WAL records the campaign's most recent replay
	// (boot or wake) applied.
	Recovered int
	// Wakes is how many times the campaign was reactivated from
	// hibernation this process.
	Wakes int
}

// campaignState is the lifecycle position of one registry entry.
type campaignState int

const (
	stateLive campaignState = iota
	stateHibernated
	stateArchived
)

// campaign is one registry entry.
type campaign struct {
	// mu serializes this campaign's lifecycle transitions (wake,
	// hibernate, archive, close): whoever holds it is the only goroutine
	// that may install or remove the serving core. It doubles as the
	// single-flight wake guard — a stampede of cold requests queues here
	// and every waiter but the first finds the campaign live. Lock order:
	// c.mu may be taken before r.mu; never the reverse. docs-lint enforces
	// that order from the declaration below.
	//
	//docs:lockorder c.mu < r.mu
	mu sync.Mutex

	// sys is the serving core, nil while hibernated or archived. Atomic
	// so Get's fast path loads it with no lock at all.
	sys atomic.Pointer[core.System]

	// lastTouch is the registry clock's UnixNano at the campaign's last
	// Get/Create — the LRU recency stamp.
	lastTouch atomic.Int64

	// The fields below are guarded by the registry's mu.
	state campaignState
	// Serving counters snapshotted when the campaign last left memory
	// (hibernate or archive); zero for campaigns not resident this boot.
	published bool
	answers   int64
	recovered int
	wakes     int
}

// Registry manages many named campaigns over one shared worker store.
// All methods are safe for concurrent use; the *core.System handles it
// returns are themselves concurrent-safe serving cores.
type Registry struct {
	cfg       Config
	kb        *kb.KB
	store     *store.Store
	ownsStore bool

	mu        sync.RWMutex
	campaigns map[string]*campaign
	closed    bool

	// liveCount tracks resident campaigns (sys != nil) so the LRU cap
	// check is O(1) on the hot path.
	liveCount atomic.Int64

	wakes        atomic.Int64
	hibernations atomic.Int64

	// wakeMu guards the ring of recent wake latencies.
	wakeMu   sync.Mutex
	wakeDur  []time.Duration
	wakeNext int

	// hookMu guards onHibernate, an optional callback invoked after each
	// hibernation (serving layers prune per-campaign caches through it).
	hookMu      sync.Mutex
	onHibernate func(name string)

	quit chan struct{}
	wg   sync.WaitGroup
}

// ValidateName reports whether name is a legal campaign name: 1 to
// MaxNameLen characters from [A-Za-z0-9_-], starting with a letter or
// digit. Legal names are safe as path components (no separators, no "."
// or "..") and as URL path segments without escaping.
func ValidateName(name string) error {
	if name == "" {
		return fmt.Errorf("registry: empty campaign name")
	}
	if len(name) > MaxNameLen {
		return fmt.Errorf("registry: campaign name longer than %d bytes", MaxNameLen)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case (c == '-' || c == '_') && i > 0:
		default:
			return fmt.Errorf("registry: campaign name %q: byte %d must be [A-Za-z0-9_-] (no leading - or _)", name, i)
		}
	}
	return nil
}

// Open creates a registry and, when cfg.WALDir is set, boots every
// non-archived campaign a previous process left under it: replayed live
// when the resident set is unbounded, listed cold (hibernated, woken on
// first touch) when Config.MaxLiveCampaigns caps it.
func Open(cfg Config) (*Registry, error) {
	if (cfg.MaxLiveCampaigns > 0 || cfg.HibernateAfter > 0) && cfg.WALDir == "" {
		return nil, fmt.Errorf("registry: hibernation (MaxLiveCampaigns/HibernateAfter) requires WALDir: releasing a memory-only campaign would lose it")
	}
	k := cfg.KB
	if k == nil {
		var err error
		k, err = kb.Default()
		if err != nil {
			return nil, err
		}
	}
	st := cfg.Store
	ownsStore := false
	if st == nil {
		path := cfg.StorePath
		if path == "" && cfg.WALDir != "" {
			// Default the shared store next to the campaign logs: recovery
			// exactness depends on the store being persistent (replay then
			// never mutates it), so a durable registry gets a durable store
			// unless the caller explicitly provides their own.
			path = filepath.Join(cfg.WALDir, storeFile)
		}
		if path != "" {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				return nil, fmt.Errorf("registry: %w", err)
			}
		}
		var err error
		st, err = store.Open(path, k.Domains().Size())
		if err != nil {
			return nil, err
		}
		ownsStore = true
	}
	r := &Registry{cfg: cfg, kb: k, store: st, ownsStore: ownsStore,
		campaigns: make(map[string]*campaign), quit: make(chan struct{})}
	if cfg.WALDir != "" {
		if err := r.recoverAll(); err != nil {
			r.Close()
			return nil, err
		}
	}
	if cfg.HibernateAfter > 0 {
		r.wg.Add(1)
		go r.idleSweeper()
	}
	return r, nil
}

// now reads the registry clock.
func (r *Registry) now() time.Time {
	if r.cfg.Clock != nil {
		return r.cfg.Clock()
	}
	//docs:allow clock injection-point default; every other registry read goes through r.now()
	return time.Now()
}

// recoverAll enumerates <WALDir>/campaigns and boots every namespace
// found. Archived ones are listed; with a live-set cap the rest are
// listed COLD — no replay at all, each campaign wakes on first touch, so
// boot lag is O(readdir) regardless of how many campaigns the root holds.
// Without a cap every non-archived campaign is replayed — CONCURRENTLY,
// up to one replay per CPU. Concurrent boot is safe: replay's only store
// writes are idempotent merge-once profiling repairs under
// campaign-scoped profile IDs (disjoint across campaigns), and seeds
// replay from each campaign's own log instead of reading the store — so
// each campaign's recovered state is a pure function of its own log plus
// the store file and boot order cannot affect it. The one residual
// cross-campaign write interaction is documented in
// docs/multi-campaign.md: two campaigns repairing lost merges for the
// SAME worker concurrently can apply them in either order, which perturbs
// only the worker's combined store record (each campaign's own state is
// anchored and unaffected). For a registry hosting many campaigns this
// turns boot lag from the sum of the replays into roughly the longest one.
func (r *Registry) recoverAll() error {
	root := filepath.Join(r.cfg.WALDir, campaignsDir)
	if err := os.MkdirAll(root, 0o755); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			return fmt.Errorf("registry: stray file %q in %s", e.Name(), root)
		}
		if err := ValidateName(e.Name()); err != nil {
			return fmt.Errorf("registry: %s holds a directory that is not a campaign: %w", root, err)
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	bootStamp := r.now().UnixNano()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for _, name := range names {
		dir := filepath.Join(root, name)
		if _, err := os.Stat(filepath.Join(dir, archivedMarker)); err == nil {
			mu.Lock()
			r.campaigns[name] = &campaign{state: stateArchived}
			mu.Unlock()
			continue
		} else if !errors.Is(err, os.ErrNotExist) {
			wg.Wait()
			return fmt.Errorf("registry: campaign %q: %w", name, err)
		}
		if r.cfg.MaxLiveCampaigns > 0 {
			// Lazy boot: the campaign's state stays on disk until its first
			// request wakes it, which is what bounds boot time and RSS at
			// million-campaign density.
			c := &campaign{state: stateHibernated}
			c.lastTouch.Store(bootStamp)
			mu.Lock()
			r.campaigns[name] = c
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func(name, dir string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sys, recovered, err := r.openCampaign(name, dir)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("registry: recover campaign %q: %w", name, err)
				}
				return
			}
			c := &campaign{state: stateLive, recovered: recovered}
			c.sys.Store(sys)
			c.lastTouch.Store(bootStamp)
			r.liveCount.Add(1)
			r.campaigns[name] = c
		}(name, dir)
	}
	wg.Wait()
	if firstErr != nil {
		// The caller closes the registry, which shuts down whatever booted.
		return firstErr
	}
	return nil
}

// openCampaign builds one campaign's core.System over the shared store and,
// when the registry is durable, arms (and replays) its WAL namespace. The
// campaign name becomes its ProfileScope, so profiling merges from
// different campaigns never alias in the shared store's merge-once ledger.
// Returns the serving core and how many WAL records the replay applied.
func (r *Registry) openCampaign(name, dir string) (*core.System, int, error) {
	sys, err := core.New(core.Config{
		KB:              r.kb,
		Store:           r.store,
		ProfileScope:    name,
		GoldenCount:     r.cfg.GoldenCount,
		HITSize:         r.cfg.HITSize,
		AnswersPerTask:  r.cfg.AnswersPerTask,
		RerunEvery:      r.cfg.RerunEvery,
		AsyncRerun:      r.cfg.AsyncRerun,
		CheckpointEvery: r.cfg.CheckpointEvery,
		SnapshotEvery:   r.cfg.SnapshotEvery,
		WALSegmentBytes: r.cfg.WALSegmentBytes,
		WALSync:         r.cfg.WALSync,
		LeaseTTL:        r.cfg.LeaseTTL,
	})
	if err != nil {
		return nil, 0, err
	}
	recovered := 0
	if dir != "" {
		info, err := sys.Recover(dir)
		if err != nil {
			sys.Close()
			return nil, 0, err
		}
		recovered = info.Records
	}
	return sys, recovered, nil
}

// dir returns the campaign's WAL namespace ("" for memory-only registries).
func (r *Registry) dir(name string) string {
	if r.cfg.WALDir == "" {
		return ""
	}
	return filepath.Join(r.cfg.WALDir, campaignsDir, name)
}

// Create registers a new campaign and returns its serving core. The name
// must validate, and must not collide with any live, hibernated or
// archived campaign.
func (r *Registry) Create(name string) (*core.System, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	// Uniqueness is enforced case-insensitively: names become directory
	// names, and on a case-insensitive filesystem "Foo" and "foo" would
	// silently share one WAL namespace — two campaigns interleaving one
	// log. Rejecting the collision here keeps the layout portable.
	for existing := range r.campaigns {
		if strings.EqualFold(existing, name) {
			r.mu.Unlock()
			return nil, fmt.Errorf("%w: %q (collides with %q)", ErrExists, name, existing)
		}
	}
	dir := r.dir(name)
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			r.mu.Unlock()
			return nil, fmt.Errorf("registry: %w", err)
		}
	}
	sys, recovered, err := r.openCampaign(name, dir)
	if err != nil {
		r.mu.Unlock()
		return nil, err
	}
	c := &campaign{state: stateLive, recovered: recovered}
	c.sys.Store(sys)
	c.lastTouch.Store(r.now().UnixNano())
	r.liveCount.Add(1)
	r.campaigns[name] = c
	r.mu.Unlock()
	r.enforceCap()
	return sys, nil
}

// Get returns the named campaign's serving core, waking it first when it
// is hibernated. The fast path — a resident campaign — is one map read
// and one atomic load, with no per-campaign lock.
func (r *Registry) Get(name string) (*core.System, error) {
	r.mu.RLock()
	closed := r.closed
	c := r.campaigns[name]
	r.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	if c == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	c.lastTouch.Store(r.now().UnixNano())
	if sys := c.sys.Load(); sys != nil {
		return sys, nil
	}
	sys, err := r.wake(name, c)
	if err != nil {
		return nil, err
	}
	// Admitting the woken campaign can push the resident set past the
	// cap; evict outside the campaign's own transition lock (eviction
	// locks OTHER campaigns' transition locks, and the fresh wake is the
	// most recently touched entry, so it is never its own victim).
	r.enforceCap()
	return sys, nil
}

// wake reactivates a hibernated campaign through the ordinary recovery
// ladder: snapshot restore plus WAL-suffix replay (a clean hibernate left
// a snapshot covering the whole log, so the suffix is empty). The
// campaign's transition lock is the single-flight guard: a stampede of
// cold requests queues here, the first waiter replays, and every other
// waiter finds the campaign live and returns the same core.
func (r *Registry) wake(name string, c *campaign) (*core.System, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sys := c.sys.Load(); sys != nil {
		return sys, nil // another waiter already woke it
	}
	r.mu.RLock()
	closed, state := r.closed, c.state
	r.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	if state == stateArchived {
		return nil, fmt.Errorf("%w: %q", ErrArchived, name)
	}
	dir := r.dir(name)
	if dir == "" {
		// Unreachable: hibernation requires WALDir (checked in Open), and
		// memory-only campaigns are always resident. Guarded anyway — an
		// empty-dir openCampaign would silently produce a blank campaign.
		return nil, fmt.Errorf("registry: wake %q: no WAL namespace", name)
	}
	start := r.now()
	sys, recovered, err := r.openCampaign(name, dir)
	if err != nil {
		return nil, fmt.Errorf("registry: wake %q: %w", name, err)
	}
	elapsed := r.now().Sub(start)
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		sys.Close()
		return nil, ErrClosed
	}
	c.state = stateLive
	c.recovered = recovered
	c.wakes++
	r.mu.Unlock()
	c.sys.Store(sys)
	c.lastTouch.Store(r.now().UnixNano())
	r.liveCount.Add(1)
	r.wakes.Add(1)
	r.observeWake(elapsed)
	return sys, nil
}

// Hibernate releases the named campaign's memory: the serving core is
// drained, a final state snapshot covering its whole log is written via
// the serial shadow-replica path, the WAL is fsynced and closed, and the
// core is dropped. The campaign stays listed and any later request wakes
// it. Hibernating an already-hibernated campaign is a no-op. An error
// after the drain means the final snapshot could not be written — the
// campaign is hibernated regardless (its state is durable in the WAL) and
// the next wake pays a longer replay; nothing is lost. Requests holding
// the campaign's *core.System fail once it closes, exactly as with
// Archive.
func (r *Registry) Hibernate(name string) error {
	if r.cfg.WALDir == "" {
		return fmt.Errorf("registry: hibernate %q: memory-only registries cannot hibernate", name)
	}
	r.mu.RLock()
	closed := r.closed
	c := r.campaigns[name]
	r.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if c == nil {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	_, err := r.hibernate(name, c)
	return err
}

// hibernate performs the live → hibernated transition under the
// campaign's transition lock. Returns whether a resident core was
// actually released. A Get racing the drain queues on the same lock and
// wakes the campaign right back up once the hibernate completes — so a
// request never observes a half-drained core, and an acknowledged answer
// is always durable before the drain's final fsync (Submit acknowledges
// only after its group-commit batch is down).
func (r *Registry) hibernate(name string, c *campaign) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sys := c.sys.Load()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return false, ErrClosed
	}
	if c.state == stateArchived {
		r.mu.Unlock()
		return false, fmt.Errorf("%w: %q", ErrArchived, name)
	}
	if sys == nil {
		r.mu.Unlock()
		return false, nil // already hibernated
	}
	// Snapshot the serving counters for List, flip the state, and pull
	// the core so no new handle resolves while the drain runs.
	c.published = sys.Published()
	c.answers = sys.AnswerCount()
	c.state = stateHibernated
	r.mu.Unlock()
	c.sys.Store(nil)
	r.liveCount.Add(-1)
	r.hibernations.Add(1)

	// Drain + final snapshot + fsync + release, outside every registry
	// lock: only requests to THIS campaign wait (on c.mu), every other
	// campaign serves on.
	err := sys.Hibernate()
	r.notifyHibernate(name)
	if err != nil {
		return true, fmt.Errorf("registry: hibernate %q: %w", name, err)
	}
	return true, nil
}

// notifyHibernate invokes the hibernation hook, if any.
func (r *Registry) notifyHibernate(name string) {
	r.hookMu.Lock()
	fn := r.onHibernate
	r.hookMu.Unlock()
	if fn != nil {
		fn(name)
	}
}

// OnHibernate registers fn to be called after each campaign hibernation
// (idle sweep, LRU eviction or explicit Hibernate) with the campaign's
// name. Serving layers use it to prune per-campaign caches. The callback
// runs with the campaign's transition lock held: keep it quick and do not
// call back into the registry.
func (r *Registry) OnHibernate(fn func(name string)) {
	r.hookMu.Lock()
	r.onHibernate = fn
	r.hookMu.Unlock()
}

// enforceCap hibernates least-recently-touched live campaigns until the
// resident set fits Config.MaxLiveCampaigns again.
func (r *Registry) enforceCap() {
	max := r.cfg.MaxLiveCampaigns
	if max <= 0 {
		return
	}
	for int(r.liveCount.Load()) > max {
		name, c := r.coldestLive()
		if c == nil {
			return
		}
		if _, err := r.hibernate(name, c); errors.Is(err, ErrClosed) {
			return
		}
		// A failed final snapshot still released the core (liveCount
		// dropped), and a vacuous hibernate means a racing evictor got
		// there first — either way the loop re-reads liveCount and makes
		// progress.
	}
}

// coldestLive returns the live campaign with the oldest touch stamp
// (ties broken by name for determinism), or nil when none is live.
func (r *Registry) coldestLive() (string, *campaign) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var (
		bestName  string
		best      *campaign
		bestTouch int64
	)
	for name, c := range r.campaigns {
		if c.sys.Load() == nil {
			continue
		}
		t := c.lastTouch.Load()
		if best == nil || t < bestTouch || (t == bestTouch && name < bestName) {
			best, bestName, bestTouch = c, name, t
		}
	}
	return bestName, best
}

// SweepIdle hibernates every live campaign untouched for at least
// Config.HibernateAfter and returns how many it released. The background
// sweeper calls this periodically; tests with an injected Clock call it
// directly for deterministic idle transitions.
func (r *Registry) SweepIdle() int {
	after := r.cfg.HibernateAfter
	if after <= 0 {
		return 0
	}
	cutoff := r.now().Add(-after).UnixNano()
	type cand struct {
		name string
		c    *campaign
	}
	var cands []cand
	r.mu.RLock()
	for name, c := range r.campaigns {
		if c.sys.Load() != nil && c.lastTouch.Load() <= cutoff {
			cands = append(cands, cand{name, c})
		}
	}
	r.mu.RUnlock()
	released := 0
	for _, cd := range cands {
		if cd.c.lastTouch.Load() > cutoff {
			continue // touched since the scan; a fresh deadline applies
		}
		ok, err := r.hibernate(cd.name, cd.c)
		if errors.Is(err, ErrClosed) {
			break
		}
		if ok {
			released++
		}
	}
	return released
}

// idleSweeper periodically hibernates idle campaigns until Close.
func (r *Registry) idleSweeper() {
	defer r.wg.Done()
	ivl := r.cfg.HibernateAfter / 4
	if ivl < time.Second {
		ivl = time.Second
	}
	if ivl > time.Minute {
		ivl = time.Minute
	}
	tick := time.NewTicker(ivl)
	defer tick.Stop()
	for {
		select {
		case <-r.quit:
			return
		case <-tick.C:
			r.SweepIdle()
		}
	}
}

// observeWake records one wake latency in the bounded ring behind
// WakeStats.
func (r *Registry) observeWake(d time.Duration) {
	r.wakeMu.Lock()
	if len(r.wakeDur) < wakeWindow {
		r.wakeDur = append(r.wakeDur, d)
	} else {
		r.wakeDur[r.wakeNext%wakeWindow] = d
	}
	r.wakeNext++
	r.wakeMu.Unlock()
}

// WakeStats returns how many hibernated-campaign reactivations have run
// and the p50/p99 wake latency over the most recent wakeWindow of them
// (zero durations when none have).
func (r *Registry) WakeStats() (total int64, p50, p99 time.Duration) {
	total = r.wakes.Load()
	r.wakeMu.Lock()
	durs := append([]time.Duration(nil), r.wakeDur...)
	r.wakeMu.Unlock()
	if len(durs) == 0 {
		return total, 0, 0
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	return total, quantile(durs, 50), quantile(durs, 99)
}

// quantile picks the nearest-rank q-th percentile from a sorted slice.
func quantile(sorted []time.Duration, q int) time.Duration {
	idx := (len(sorted)*q + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx]
}

// Hibernations returns how many live → hibernated transitions have run
// (idle sweeps, LRU evictions and explicit Hibernate calls combined).
func (r *Registry) Hibernations() int64 { return r.hibernations.Load() }

// Names returns every campaign name (live, hibernated and archived),
// sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.campaigns))
	for name := range r.campaigns {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// List describes every campaign, sorted by name.
func (r *Registry) List() []Info {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.campaigns))
	for name := range r.campaigns {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Info, 0, len(names))
	for _, name := range names {
		c := r.campaigns[name]
		info := Info{Name: name, Archived: c.state == stateArchived,
			Hibernated: c.state == stateHibernated,
			Published:  c.published, Answers: c.answers,
			Recovered: c.recovered, Wakes: c.wakes}
		if sys := c.sys.Load(); sys != nil {
			info.Published = sys.Published()
			info.Answers = sys.AnswerCount()
		}
		out = append(out, info)
	}
	return out
}

// Archive ends a campaign for good: the serving core (when resident) is
// drained and closed (its WAL flushed and fsynced), and — for durable
// registries — an archive marker is written so later boots list the
// campaign without replaying it. A hibernated campaign archives without
// waking: its state is already durable, only the marker is written.
// Requests holding the campaign's *core.System fail once it closes.
func (r *Registry) Archive(name string) error {
	r.mu.RLock()
	closed := r.closed
	c := r.campaigns[name]
	r.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if c == nil {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	// The transition lock orders Archive against a concurrent wake or
	// hibernate of the same campaign; the close itself runs outside the
	// registry lock so other campaigns never stall on the drain.
	c.mu.Lock()
	defer c.mu.Unlock()
	sys := c.sys.Load()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	if c.state == stateArchived {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrArchived, name)
	}
	// Snapshot the serving counters for List, then flip the entry so no
	// new handle can be fetched while the drain runs.
	if sys != nil {
		c.published = sys.Published()
		c.answers = sys.AnswerCount()
	}
	c.state = stateArchived
	r.mu.Unlock()
	if sys != nil {
		c.sys.Store(nil)
		r.liveCount.Add(-1)
		if err := sys.Close(); err != nil {
			// The campaign stays archived in memory but no marker is written:
			// the next boot revives it live, which is the safe direction
			// (nothing lost, the requester re-archives).
			return fmt.Errorf("registry: archive %q: %w", name, err)
		}
	}
	if dir := r.dir(name); dir != "" {
		if err := os.WriteFile(filepath.Join(dir, archivedMarker), []byte("archived\n"), 0o644); err != nil {
			return fmt.Errorf("registry: archive %q: %w", name, err)
		}
		if d, err := os.Open(dir); err == nil {
			_ = d.Sync()
			d.Close()
		}
	}
	return nil
}

// Live returns the number of serveable (non-archived) campaigns — live
// plus hibernated — a cheap counter for serving stats, unlike List which
// queries every campaign.
func (r *Registry) Live() int {
	live, hibernated, _ := r.Counts()
	return live + hibernated
}

// Counts returns the campaign census by lifecycle state.
func (r *Registry) Counts() (live, hibernated, archived int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.campaigns {
		switch c.state {
		case stateLive:
			live++
		case stateHibernated:
			hibernated++
		case stateArchived:
			archived++
		}
	}
	return live, hibernated, archived
}

// Resident reports whether the named campaign is live in memory right
// now — without waking it (unlike Get). False for hibernated, archived
// and unknown campaigns, and on a closed registry.
func (r *Registry) Resident(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return false
	}
	c := r.campaigns[name]
	return c != nil && c.sys.Load() != nil
}

// Store exposes the shared worker store (for diagnostics and tests).
func (r *Registry) Store() *store.Store { return r.store }

// Close shuts every resident campaign down gracefully (background workers
// drained, WALs flushed and fsynced) and releases the shared store when the
// registry owns it. Campaign handles must not be used after Close.
func (r *Registry) Close() error {
	type entry struct {
		name string
		c    *campaign
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	entries := make([]entry, 0, len(r.campaigns))
	for name, c := range r.campaigns {
		entries = append(entries, entry{name, c})
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	close(r.quit)
	r.wg.Wait()
	var err error
	for _, e := range entries {
		// The transition lock waits out any in-flight wake or hibernate;
		// a wake that loses the race to closed never installs its core
		// (it re-checks under the registry lock and closes it itself).
		e.c.mu.Lock()
		sys := e.c.sys.Swap(nil)
		e.c.mu.Unlock()
		if sys == nil {
			continue
		}
		r.liveCount.Add(-1)
		if cerr := sys.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("registry: close %q: %w", e.name, cerr)
		}
	}
	if r.ownsStore {
		if cerr := r.store.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
