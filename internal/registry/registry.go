// Package registry hosts many named DOCS campaigns in one process, the
// multi-tenant deployment shape the paper implies: requesters come and go,
// each bringing their own task set (a campaign), while the worker crowd is
// shared. Each campaign is a full core.System — its own task set, golden
// selection, truth-inference state and WAL — but every campaign sees one
// shared long-run worker store, so a worker profiled on requester A's
// golden tasks starts requester B's campaign with their per-domain quality
// vector already in place (the paper's returning-worker semantics,
// Theorem 1) instead of re-running the golden gauntlet.
//
// # On-disk layout
//
// A registry opened with a WAL root owns that directory:
//
//	<root>/store.json         shared worker store (checkpoint + .delta log)
//	<root>/campaigns/<name>/  one WAL namespace per campaign
//	<root>/campaigns/<name>/archived   marker: campaign closed for good
//
// Open enumerates <root>/campaigns and recovers every non-archived
// campaign through core.Recover before serving. Replay order across
// campaigns is irrelevant by construction: the only store writes replay
// can perform are merge-once profiling repairs (store.MergeProfile, keyed
// by campaign-scoped profile IDs — each campaign's ProfileScope is its
// name), which are idempotent and campaign-local, and every other store
// read a campaign ever made is restored from its own log's seed records
// rather than re-read. Each campaign's recovered state is therefore a pure
// function of its own log plus the store file — the multi-campaign crash
// suite asserts exactly that, campaign by campaign, against serial
// references, and the live-vs-recovered suite asserts it against the
// pre-kill live system.
//
// # Lifecycle
//
// Create registers a campaign and arms its WAL; the returned core.System
// serves Publish/Request/Submit/Results as usual. Archive ends a campaign:
// its system is drained and closed, an `archived` marker is written, and
// later boots list it without replaying. Close shuts the whole registry
// down gracefully (every campaign's WAL flushed and fsynced, then the
// shared store released).
package registry

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"docs/internal/core"
	"docs/internal/kb"
	"docs/internal/store"
	"docs/internal/wal"
)

// Errors the lifecycle methods return; test with errors.Is.
var (
	ErrNotFound = errors.New("registry: no such campaign")
	ErrArchived = errors.New("registry: campaign is archived")
	ErrExists   = errors.New("registry: campaign already exists")
	ErrClosed   = errors.New("registry: closed")
)

// MaxNameLen bounds campaign names; names become directory names, so the
// bound keeps paths portable.
const MaxNameLen = 64

// campaignsDir is the subdirectory of the WAL root holding one namespace
// per campaign.
const campaignsDir = "campaigns"

// archivedMarker is the file whose presence in a campaign's WAL namespace
// marks it archived; boots list but do not replay it.
const archivedMarker = "archived"

// storeFile is the shared worker store's default location under the WAL
// root.
const storeFile = "store.json"

// Config configures a Registry. Campaign-tuning fields are applied to every
// campaign the registry creates or recovers.
type Config struct {
	// WALDir is the registry's root directory: the shared store and every
	// campaign's WAL namespace live under it, and Open replays whatever a
	// previous process left there. Empty keeps the whole registry
	// memory-only (campaigns are not durable and vanish with the process).
	WALDir string
	// Store is the shared worker store. Nil lets the registry open one:
	// at StorePath if set, else at <WALDir>/store.json when WALDir is set
	// (recovery correctness wants the store persistent — see the package
	// comment), else memory-only. A caller-provided store is never closed
	// by the registry.
	Store *store.Store
	// StorePath overrides the shared store location when Store is nil.
	StorePath string
	// KB is the knowledge base shared by every campaign; nil selects the
	// curated default.
	KB *kb.KB

	// Per-campaign tuning, passed through to core.Config.
	GoldenCount     int
	HITSize         int
	AnswersPerTask  int
	RerunEvery      int
	AsyncRerun      bool
	CheckpointEvery int
	SnapshotEvery   int
	WALSegmentBytes int64
	WALSync         wal.SyncPolicy
	LeaseTTL        time.Duration
}

// Info describes one campaign in List output.
type Info struct {
	Name string
	// Archived campaigns are closed for good: listed, never served or
	// replayed.
	Archived bool
	// Published and Answers are the campaign's serving state — for an
	// archived campaign, its state when it was archived this process, or
	// zero when the archive predates this boot (archived logs are not
	// replayed, so their counters are unknown).
	Published bool
	Answers   int64
	// Recovered is how many WAL records boot replayed for this campaign.
	Recovered int
}

// campaign is one registry entry.
type campaign struct {
	sys      *core.System // nil once archived
	archived bool
	// Serving state snapshotted at archive time (zero for campaigns whose
	// archive marker predates this boot).
	published bool
	answers   int64
	recovered int
}

// Registry manages many named campaigns over one shared worker store.
// All methods are safe for concurrent use; the *core.System handles it
// returns are themselves concurrent-safe serving cores.
type Registry struct {
	cfg       Config
	kb        *kb.KB
	store     *store.Store
	ownsStore bool

	mu        sync.RWMutex
	campaigns map[string]*campaign
	closed    bool
}

// ValidateName reports whether name is a legal campaign name: 1 to
// MaxNameLen characters from [A-Za-z0-9_-], starting with a letter or
// digit. Legal names are safe as path components (no separators, no "."
// or "..") and as URL path segments without escaping.
func ValidateName(name string) error {
	if name == "" {
		return fmt.Errorf("registry: empty campaign name")
	}
	if len(name) > MaxNameLen {
		return fmt.Errorf("registry: campaign name longer than %d bytes", MaxNameLen)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case (c == '-' || c == '_') && i > 0:
		default:
			return fmt.Errorf("registry: campaign name %q: byte %d must be [A-Za-z0-9_-] (no leading - or _)", name, i)
		}
	}
	return nil
}

// Open creates a registry and, when cfg.WALDir is set, recovers every
// non-archived campaign a previous process left under it.
func Open(cfg Config) (*Registry, error) {
	k := cfg.KB
	if k == nil {
		var err error
		k, err = kb.Default()
		if err != nil {
			return nil, err
		}
	}
	st := cfg.Store
	ownsStore := false
	if st == nil {
		path := cfg.StorePath
		if path == "" && cfg.WALDir != "" {
			// Default the shared store next to the campaign logs: recovery
			// exactness depends on the store being persistent (replay then
			// never mutates it), so a durable registry gets a durable store
			// unless the caller explicitly provides their own.
			path = filepath.Join(cfg.WALDir, storeFile)
		}
		if path != "" {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				return nil, fmt.Errorf("registry: %w", err)
			}
		}
		var err error
		st, err = store.Open(path, k.Domains().Size())
		if err != nil {
			return nil, err
		}
		ownsStore = true
	}
	r := &Registry{cfg: cfg, kb: k, store: st, ownsStore: ownsStore, campaigns: make(map[string]*campaign)}
	if cfg.WALDir != "" {
		if err := r.recoverAll(); err != nil {
			r.Close()
			return nil, err
		}
	}
	return r, nil
}

// recoverAll enumerates <WALDir>/campaigns and boots every namespace
// found: archived ones are listed, the rest replayed — CONCURRENTLY, up to
// one replay per CPU. Concurrent boot is safe: replay's only store writes
// are idempotent merge-once profiling repairs under campaign-scoped
// profile IDs (disjoint across campaigns), and seeds replay from each
// campaign's own log instead of reading the store — so each campaign's
// recovered state is a pure function of its own log plus the store file
// and boot order cannot affect it. The one residual cross-campaign write
// interaction is documented in docs/multi-campaign.md: two campaigns
// repairing lost merges for the SAME worker concurrently can apply them
// in either order, which perturbs only the worker's combined store record
// (each campaign's own state is anchored and unaffected). For a registry
// hosting many campaigns this turns boot lag from the sum of the replays
// into roughly the longest one.
func (r *Registry) recoverAll() error {
	root := filepath.Join(r.cfg.WALDir, campaignsDir)
	if err := os.MkdirAll(root, 0o755); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			return fmt.Errorf("registry: stray file %q in %s", e.Name(), root)
		}
		if err := ValidateName(e.Name()); err != nil {
			return fmt.Errorf("registry: %s holds a directory that is not a campaign: %w", root, err)
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for _, name := range names {
		dir := filepath.Join(root, name)
		if _, err := os.Stat(filepath.Join(dir, archivedMarker)); err == nil {
			mu.Lock()
			r.campaigns[name] = &campaign{archived: true}
			mu.Unlock()
			continue
		} else if !errors.Is(err, os.ErrNotExist) {
			wg.Wait()
			return fmt.Errorf("registry: campaign %q: %w", name, err)
		}
		wg.Add(1)
		go func(name, dir string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c, err := r.openCampaign(name, dir)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("registry: recover campaign %q: %w", name, err)
				}
				return
			}
			r.campaigns[name] = c
		}(name, dir)
	}
	wg.Wait()
	if firstErr != nil {
		// The caller closes the registry, which shuts down whatever booted.
		return firstErr
	}
	return nil
}

// openCampaign builds one campaign's core.System over the shared store and,
// when the registry is durable, arms (and replays) its WAL namespace. The
// campaign name becomes its ProfileScope, so profiling merges from
// different campaigns never alias in the shared store's merge-once ledger.
func (r *Registry) openCampaign(name, dir string) (*campaign, error) {
	sys, err := core.New(core.Config{
		KB:              r.kb,
		Store:           r.store,
		ProfileScope:    name,
		GoldenCount:     r.cfg.GoldenCount,
		HITSize:         r.cfg.HITSize,
		AnswersPerTask:  r.cfg.AnswersPerTask,
		RerunEvery:      r.cfg.RerunEvery,
		AsyncRerun:      r.cfg.AsyncRerun,
		CheckpointEvery: r.cfg.CheckpointEvery,
		SnapshotEvery:   r.cfg.SnapshotEvery,
		WALSegmentBytes: r.cfg.WALSegmentBytes,
		WALSync:         r.cfg.WALSync,
		LeaseTTL:        r.cfg.LeaseTTL,
	})
	if err != nil {
		return nil, err
	}
	c := &campaign{sys: sys}
	if dir != "" {
		info, err := sys.Recover(dir)
		if err != nil {
			sys.Close()
			return nil, err
		}
		c.recovered = info.Records
	}
	return c, nil
}

// dir returns the campaign's WAL namespace ("" for memory-only registries).
func (r *Registry) dir(name string) string {
	if r.cfg.WALDir == "" {
		return ""
	}
	return filepath.Join(r.cfg.WALDir, campaignsDir, name)
}

// Create registers a new campaign and returns its serving core. The name
// must validate, and must not collide with any live or archived campaign.
func (r *Registry) Create(name string) (*core.System, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	// Uniqueness is enforced case-insensitively: names become directory
	// names, and on a case-insensitive filesystem "Foo" and "foo" would
	// silently share one WAL namespace — two campaigns interleaving one
	// log. Rejecting the collision here keeps the layout portable.
	for existing := range r.campaigns {
		if strings.EqualFold(existing, name) {
			return nil, fmt.Errorf("%w: %q (collides with %q)", ErrExists, name, existing)
		}
	}
	dir := r.dir(name)
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("registry: %w", err)
		}
	}
	c, err := r.openCampaign(name, dir)
	if err != nil {
		return nil, err
	}
	r.campaigns[name] = c
	return c.sys, nil
}

// Get returns the named campaign's serving core.
func (r *Registry) Get(name string) (*core.System, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return nil, ErrClosed
	}
	c, ok := r.campaigns[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if c.archived {
		return nil, fmt.Errorf("%w: %q", ErrArchived, name)
	}
	return c.sys, nil
}

// Names returns every campaign name (live and archived), sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.campaigns))
	for name := range r.campaigns {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// List describes every campaign, sorted by name.
func (r *Registry) List() []Info {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.campaigns))
	for name := range r.campaigns {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Info, 0, len(names))
	for _, name := range names {
		c := r.campaigns[name]
		info := Info{Name: name, Archived: c.archived, Published: c.published,
			Answers: c.answers, Recovered: c.recovered}
		if c.sys != nil {
			info.Published = c.sys.Published()
			info.Answers = c.sys.AnswerCount()
		}
		out = append(out, info)
	}
	return out
}

// Archive ends a campaign for good: the serving core is drained and closed
// (its WAL flushed and fsynced), and — for durable registries — an archive
// marker is written so later boots list the campaign without replaying it.
// Requests holding the campaign's *core.System fail once it closes.
func (r *Registry) Archive(name string) error {
	// Mark archived under the lock, but drain and close outside it: the
	// close waits for a pending batch rerun and fsyncs the WAL, and
	// holding the registry lock across that would stall every request to
	// every other campaign.
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	c, ok := r.campaigns[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if c.archived {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrArchived, name)
	}
	// Snapshot the serving counters for List, then flip the entry so no
	// new handle can be fetched while the drain runs.
	sys := c.sys
	c.published = sys.Published()
	c.answers = sys.AnswerCount()
	c.sys = nil
	c.archived = true
	r.mu.Unlock()

	if err := sys.Close(); err != nil {
		// The campaign stays archived in memory but no marker is written:
		// the next boot revives it live, which is the safe direction
		// (nothing lost, the requester re-archives).
		return fmt.Errorf("registry: archive %q: %w", name, err)
	}
	if dir := r.dir(name); dir != "" {
		if err := os.WriteFile(filepath.Join(dir, archivedMarker), []byte("archived\n"), 0o644); err != nil {
			return fmt.Errorf("registry: archive %q: %w", name, err)
		}
		if d, err := os.Open(dir); err == nil {
			_ = d.Sync()
			d.Close()
		}
	}
	return nil
}

// Live returns the number of live (non-archived) campaigns — a cheap
// counter for serving stats, unlike List which queries every campaign.
func (r *Registry) Live() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, c := range r.campaigns {
		if !c.archived {
			n++
		}
	}
	return n
}

// Store exposes the shared worker store (for diagnostics and tests).
func (r *Registry) Store() *store.Store { return r.store }

// Close shuts every live campaign down gracefully (background workers
// drained, WALs flushed and fsynced) and releases the shared store when the
// registry owns it. Campaign handles must not be used after Close.
func (r *Registry) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	var err error
	names := make([]string, 0, len(r.campaigns))
	for name := range r.campaigns {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := r.campaigns[name]
		if c.sys == nil {
			continue
		}
		if cerr := c.sys.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("registry: close %q: %w", name, cerr)
		}
		c.sys = nil
	}
	if r.ownsStore {
		if cerr := r.store.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
