package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"docs/internal/core"
	"docs/internal/model"
	"docs/internal/snapshot"
	"docs/internal/wal"
)

// The hibernate-path crash sweep. A hibernation is a sequence of durable
// steps — WAL fsync, final snapshot write (atomic tmp+rename), memory
// release — and a kill -9 can land between any two of them, or tear the
// snapshot file itself mid-write (simulated by truncation, since the
// atomic rename makes a *partially renamed* file impossible but a torn
// tmp promoted by a buggy filesystem or a corrupted sector is not). Every
// image must boot to the campaign's serial reference: the safe direction
// is "boots live with a longer replay", never state loss. Each image is
// booted both EAGERLY (uncapped registry, replay at Open) and LAZILY
// (capped registry, replay on first Get — the wake path), because the
// density configuration is exactly where crashed hibernations will be
// rebooted in production.

// hibernateCrashFixture drives one campaign through traffic → hibernate →
// wake → more traffic → hibernate, returning the campaign's durable
// record stream, the final live fingerprint, and a copy of the FIRST
// hibernate's snapshot (a stale-but-valid snapshot for the suffix-replay
// case).
type hibernateCrashFixture struct {
	root      string // registry root (closed, quiescent)
	dir       string // campaign WAL namespace
	recs      []wal.Record
	m         int
	fpLive    string // live fingerprint at final hibernate
	staleSnap []byte // snapshot file after the first hibernate
	staleSeq  int    // records covered by the stale snapshot
}

func buildHibernateCrashFixture(t *testing.T) *hibernateCrashFixture {
	t.Helper()
	root := t.TempDir()
	reg, err := Open(crashConfig(root))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := reg.Create("solo")
	if err != nil {
		t.Fatal(err)
	}
	m := sys.Domains().Size()
	if err := sys.Publish(synthTasks(m, 24, 0)); err != nil {
		t.Fatal(err)
	}
	// Phase one: a bounded slice of the workload (two workers profiled plus
	// a few regular answers), so the first hibernate's snapshot covers a
	// strict prefix of the eventual log.
	for w := 0; w < 2; w++ {
		profile(t, sys, fmt.Sprintf("w%d", w))
	}
	for w := 0; w < 2; w++ {
		worker := fmt.Sprintf("w%d", w)
		got, err := sys.Request(worker, crashKnobs.hit)
		if err != nil {
			t.Fatal(err)
		}
		for _, tk := range got {
			c := tk.Truth
			if c == model.NoTruth {
				c = 0
			}
			if err := sys.Submit(worker, tk.ID, c); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := reg.Hibernate("solo"); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, campaignsDir, "solo")
	staleSnap, err := os.ReadFile(filepath.Join(dir, snapshot.FileName))
	if err != nil {
		t.Fatalf("first hibernate left no snapshot: %v", err)
	}
	staleSeq := len(readStream(t, dir))

	// Wake and extend the campaign: run the rest of the workload to
	// saturation, final hibernate. The stale snapshot now trails the log.
	driveInterleaved(t, reg, []string{"solo"}, 5, 23)
	sys, err = reg.Get("solo")
	if err != nil {
		t.Fatal(err)
	}
	fpLive := sys.Fingerprint()
	if err := reg.Hibernate("solo"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	recs := readStream(t, dir)
	if len(recs) <= staleSeq {
		t.Fatalf("second wave added no records (%d then %d)", staleSeq, len(recs))
	}
	return &hibernateCrashFixture{root: root, dir: dir, recs: recs, m: m,
		fpLive: fpLive, staleSnap: staleSnap, staleSeq: staleSeq}
}

// buildImage copies the fixture's durable tree into a fresh root and lets
// mutate damage the campaign's snapshot file (or remove it).
func (f *hibernateCrashFixture) buildImage(t *testing.T, mutate func(snapPath string)) string {
	t.Helper()
	crashRoot := t.TempDir()
	copyTree(t, f.root, crashRoot)
	mutate(filepath.Join(crashRoot, campaignsDir, "solo", snapshot.FileName))
	return crashRoot
}

// bootAndCheck opens a registry over the image in the given mode (eager =
// uncapped boot replay, lazy = capped cold boot + wake on Get) and
// asserts the campaign recovered bit-identically to the serial reference,
// with the expected recovery shape.
func (f *hibernateCrashFixture) bootAndCheck(t *testing.T, label, crashRoot string, lazy bool,
	wantSnapshotUsed bool, wantRejected bool, wantRecords int) {
	t.Helper()
	cfg := crashConfig(crashRoot)
	if lazy {
		cfg.MaxLiveCampaigns = 1
		label += "/lazy"
	} else {
		label += "/eager"
	}
	booted, err := Open(cfg)
	if err != nil {
		t.Fatalf("%s: boot over crash image: %v", label, err)
	}
	defer booted.Close()
	if lazy {
		if live, hib, _ := booted.Counts(); live != 0 || hib != 1 {
			t.Fatalf("%s: cold boot counts = %d live / %d hibernated, want 0/1", label, live, hib)
		}
	}
	sys, err := booted.Get("solo")
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	info := sys.Recovery()
	if info.SnapshotUsed != wantSnapshotUsed {
		t.Fatalf("%s: SnapshotUsed = %v, want %v (rejected: %q)", label, info.SnapshotUsed, wantSnapshotUsed, info.SnapshotRejected)
	}
	if wantRejected && info.SnapshotRejected == "" {
		t.Fatalf("%s: damaged snapshot was not loudly rejected", label)
	}
	if !wantRejected && info.SnapshotRejected != "" {
		t.Fatalf("%s: clean snapshot rejected: %q", label, info.SnapshotRejected)
	}
	if info.Records != wantRecords {
		t.Fatalf("%s: replayed %d records, want %d", label, info.Records, wantRecords)
	}
	if lazy {
		if total, _, _ := booted.WakeStats(); total != 1 {
			t.Fatalf("%s: %d wakes, want 1", label, total)
		}
	}
	ref, refStore := referenceSystem(t, "solo", f.recs, filepath.Join(f.root, storeFile), f.m)
	defer refStore.Close()
	defer ref.Close()
	if got, want := sys.Fingerprint(), ref.Fingerprint(); got != want {
		t.Fatalf("%s: recovered state differs from serial reference\n%s",
			label, core.DiffFingerprints(got, want, 8))
	}
	// The serial reference replays the identical stream the live campaign
	// served, so it must also equal the live pre-hibernate fingerprint —
	// tying this sweep back to the live-vs-recovered contract.
	if got := sys.Fingerprint(); got != f.fpLive {
		t.Fatalf("%s: recovered state differs from live pre-hibernate state\n%s",
			label, core.DiffFingerprints(got, f.fpLive, 8))
	}
}

// TestHibernateCrashPointsExact sweeps the kill points of the hibernate
// sequence. Every image must recover the full record stream's state
// bit-exactly; only the replay LENGTH may vary with where the crash
// landed.
func TestHibernateCrashPointsExact(t *testing.T) {
	f := buildHibernateCrashFixture(t)
	all := len(f.recs)

	cases := []struct {
		label  string
		mutate func(snapPath string)
		// expected recovery shape
		snapshotUsed bool
		rejected     bool
		records      int
	}{
		{
			// Killed after the memory release (or clean shutdown): the final
			// snapshot covers the whole log — a wake restores it and replays
			// nothing. This is the O(suffix) contract with suffix 0.
			label:        "clean-hibernate",
			mutate:       func(string) {},
			snapshotUsed: true, records: 0,
		},
		{
			// Killed between the WAL fsync and the snapshot rename: the tmp
			// file never promoted, the PREVIOUS snapshot (here: the first
			// hibernate's) survives — restore it and replay the suffix.
			label: "crash-before-snapshot-rename",
			mutate: func(snapPath string) {
				if err := os.WriteFile(snapPath, f.staleSnap, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			snapshotUsed: true, records: all - f.staleSeq,
		},
		{
			// Killed before any snapshot ever existed (first hibernation's
			// fsync landed, write didn't): full replay, nothing lost.
			label: "crash-before-first-snapshot",
			mutate: func(snapPath string) {
				if err := os.Remove(snapPath); err != nil {
					t.Fatal(err)
				}
			},
			snapshotUsed: false, records: all,
		},
		{
			// Torn snapshot: a prefix of the file. The restore must reject it
			// LOUDLY and fall back to full replay — losing time, never state.
			label: "torn-snapshot-frame",
			mutate: func(snapPath string) {
				data, err := os.ReadFile(snapPath)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(snapPath, data[:len(data)/3], 0o644); err != nil {
					t.Fatal(err)
				}
			},
			snapshotUsed: false, rejected: true, records: all,
		},
		{
			// Near-complete tear: everything but the trailing checksum bytes.
			label: "torn-snapshot-tail",
			mutate: func(snapPath string) {
				data, err := os.ReadFile(snapPath)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(snapPath, data[:len(data)-3], 0o644); err != nil {
					t.Fatal(err)
				}
			},
			snapshotUsed: false, rejected: true, records: all,
		},
		{
			// Bit rot in the middle of an intact-length file.
			label: "corrupt-snapshot-byte",
			mutate: func(snapPath string) {
				data, err := os.ReadFile(snapPath)
				if err != nil {
					t.Fatal(err)
				}
				data[len(data)/2] ^= 0x40
				if err := os.WriteFile(snapPath, data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			snapshotUsed: false, rejected: true, records: all,
		},
	}
	for _, tc := range cases {
		crashRoot := f.buildImage(t, tc.mutate)
		f.bootAndCheck(t, tc.label, crashRoot, false, tc.snapshotUsed, tc.rejected, tc.records)
		// The same image must ALSO wake correctly under a capped registry —
		// the lazy path is how a crashed hibernation reboots at density.
		lazyRoot := f.buildImage(t, tc.mutate)
		f.bootAndCheck(t, tc.label, lazyRoot, true, tc.snapshotUsed, tc.rejected, tc.records)
	}
}

// TestHibernateCrashMidLogTear combines a torn snapshot with a torn WAL
// tail — the double-fault image of a machine dying mid-hibernate while
// the filesystem scrambles both files. The boot must reject the snapshot,
// replay the intact record prefix, and match the serial reference OF THAT
// PREFIX: every durable record survives, every torn one was never
// acknowledged as covered.
func TestHibernateCrashMidLogTear(t *testing.T) {
	f := buildHibernateCrashFixture(t)
	spans := segmentSpans(t, f.dir)
	surviving := len(f.recs) - 2

	crashRoot := t.TempDir()
	copyFileIfExists(t, filepath.Join(f.root, storeFile), filepath.Join(crashRoot, storeFile))
	copyFileIfExists(t, filepath.Join(f.root, storeFile+".delta"), filepath.Join(crashRoot, storeFile+".delta"))
	dst := filepath.Join(crashRoot, campaignsDir, "solo")
	buildCrashCampaign(t, f.dir, dst, f.recs, spans, surviving, 5)
	// Stale snapshot from the first hibernate: it covers a prefix of the
	// surviving records, so it is USABLE — restore + suffix replay up to
	// the tear.
	if err := os.WriteFile(filepath.Join(dst, snapshot.FileName), f.staleSnap, 0o644); err != nil {
		t.Fatal(err)
	}

	booted, err := Open(crashConfig(crashRoot))
	if err != nil {
		t.Fatal(err)
	}
	defer booted.Close()
	sys, err := booted.Get("solo")
	if err != nil {
		t.Fatal(err)
	}
	info := sys.Recovery()
	if !info.SnapshotUsed {
		t.Fatalf("stale-but-valid snapshot not used (rejected: %q)", info.SnapshotRejected)
	}
	if !info.TornTail {
		t.Fatal("torn WAL tail not reported")
	}
	if info.Records != surviving-f.staleSeq {
		t.Fatalf("replayed %d records, want the %d-record suffix", info.Records, surviving-f.staleSeq)
	}
	ref, refStore := referenceSystem(t, "solo", f.recs[:surviving], filepath.Join(f.root, storeFile), f.m)
	defer refStore.Close()
	defer ref.Close()
	if got, want := sys.Fingerprint(), ref.Fingerprint(); got != want {
		t.Fatalf("double-fault recovery differs from serial reference of the surviving prefix\n%s",
			core.DiffFingerprints(got, want, 8))
	}
}
