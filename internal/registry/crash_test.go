package registry

import (
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"docs/internal/core"
	"docs/internal/mathx"
	"docs/internal/model"
	"docs/internal/store"
	"docs/internal/wal"
)

// The multi-campaign crash harness. A registry hosting several campaigns
// runs an interleaved workload with an overlapping worker population (so
// the shared store actually carries profiles across campaigns), then the
// on-disk state is "killed" at randomized per-campaign points — each
// campaign's WAL cut independently, some mid-record, exactly what a kill -9
// leaves when the namespaces flush independently. Booting a registry over
// each crash image must recover every campaign to the state of a serial
// replay of its own surviving records (the per-campaign serial reference),
// and must leave the shared store untouched: replay reads profiles, it
// never re-merges them.

// campaignKnobs are the per-campaign tuning knobs shared by the registry
// under test and the serial reference systems.
var crashKnobs = struct {
	golden, hit, perTask, rerun int
	segBytes                    int64
}{golden: 4, hit: 4, perTask: 3, rerun: 20, segBytes: 1 << 10}

func crashConfig(root string) Config {
	return Config{
		WALDir:          root,
		GoldenCount:     crashKnobs.golden,
		HITSize:         crashKnobs.hit,
		AnswersPerTask:  crashKnobs.perTask,
		RerunEvery:      crashKnobs.rerun,
		CheckpointEvery: -1,
		WALSegmentBytes: crashKnobs.segBytes,
	}
}

// driveInterleaved round-robins randomized workers across every campaign
// until all saturate. Workers are shared across campaigns, so profiling in
// one campaign feeds store-seeded serving in the others.
func driveInterleaved(t *testing.T, reg *Registry, names []string, nWorkers int, seed uint64) {
	t.Helper()
	r := mathx.NewRand(seed)
	goldenSets := make(map[string]map[int]bool, len(names))
	for _, name := range names {
		sys, err := reg.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		set := map[int]bool{}
		for _, id := range sys.GoldenTasks() {
			set[id] = true
		}
		goldenSets[name] = set
	}
	idle := map[string]int{}
	for {
		active := false
		for _, name := range names {
			if idle[name] > 40 {
				continue
			}
			active = true
			sys, err := reg.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			w := fmt.Sprintf("w%d", int(r.Float64()*float64(nWorkers)))
			got, err := sys.Request(w, crashKnobs.hit)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) == 0 {
				idle[name]++
				continue
			}
			idle[name] = 0
			for _, tk := range got {
				c := tk.Truth
				if c == model.NoTruth {
					c = 0
				} else if !goldenSets[name][tk.ID] && r.Float64() >= 0.85 {
					c = 1 - c
				}
				if err := sys.Submit(w, tk.ID, c); err != nil {
					t.Fatal(err)
				}
			}
		}
		if !active {
			return
		}
	}
}

// readStream reads back a campaign's durable record stream: checkpoint
// prefix (if any) plus every intact segment record after it.
func readStream(t *testing.T, dir string) []wal.Record {
	t.Helper()
	var recs []wal.Record
	var cpSeq uint64
	cp, err := wal.ReadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cp != nil {
		recs = append(recs, cp.Records...)
		cpSeq = cp.LastSeq
	}
	st, err := wal.Replay(dir, func(rec wal.Record) error {
		if rec.Seq > cpSeq {
			recs = append(recs, rec)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.TornTail {
		t.Fatal("graceful close left a torn tail")
	}
	return recs
}

// frameSpan locates a record's frame inside a segment file.
type frameSpan struct {
	file       string
	start, end int64
}

func segmentSpans(t *testing.T, dir string) map[uint64]frameSpan {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	spans := make(map[uint64]frameSpan)
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".wal") {
			continue
		}
		err := wal.ScanSegment(filepath.Join(dir, e.Name()), func(rec wal.Record, start, end int64) error {
			spans[rec.Seq] = frameSpan{file: e.Name(), start: start, end: end}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return spans
}

// buildCrashCampaign writes the crash image of one campaign's WAL
// namespace into dst: segments up to the cut survive (the one holding the
// cut truncated, optionally tornBytes into the next frame), later segments
// never existed.
func buildCrashCampaign(t *testing.T, srcDir, dst string, recs []wal.Record, spans map[uint64]frameSpan, surviving int, tornBytes int64) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	cutFile, cutOff := "", int64(0)
	if surviving > 0 {
		sp, ok := spans[recs[surviving-1].Seq]
		if !ok {
			t.Fatalf("record %d not found in segments", recs[surviving-1].Seq)
		}
		cutFile, cutOff = sp.file, sp.end
	}
	if tornBytes > 0 && surviving < len(recs) {
		if next, ok := spans[recs[surviving].Seq]; ok {
			if next.file != cutFile {
				cutFile, cutOff = next.file, next.start
			}
			if frameLen := next.end - next.start; tornBytes >= frameLen {
				tornBytes = frameLen - 1
			}
			cutOff += tornBytes
		}
	}
	if cutFile == "" {
		return // crash preceded every durable byte: an empty namespace
	}
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".wal") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // zero-padded hex: lexicographic == sequence order
	for _, name := range names {
		if name > cutFile {
			break
		}
		data, err := os.ReadFile(filepath.Join(srcDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if name == cutFile {
			data = data[:cutOff]
		}
		if err := os.WriteFile(filepath.Join(dst, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// copyFileIfExists copies src to dst, tolerating a missing src.
func copyFileIfExists(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if errors.Is(err, fs.ErrNotExist) {
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// storePrint fingerprints a store's full contents — worker records and the
// merge-once profile ledger — with float64 bits.
func storePrint(st *store.Store) string {
	var b strings.Builder
	for _, w := range st.Workers() {
		s, _ := st.Worker(w)
		fmt.Fprintf(&b, "%s:q", w)
		for _, q := range s.Q {
			fmt.Fprintf(&b, "%016x,", math.Float64bits(q))
		}
		b.WriteString("u")
		for _, u := range s.U {
			fmt.Fprintf(&b, "%016x,", math.Float64bits(u))
		}
		b.WriteString(";")
	}
	b.WriteString("|profiles:")
	for _, pid := range st.ProfileIDs() {
		a, _ := st.ProfileAnchor(pid)
		fmt.Fprintf(&b, "%s:q", pid)
		for _, q := range a.Q {
			fmt.Fprintf(&b, "%016x,", math.Float64bits(q))
		}
		b.WriteString("u")
		for _, u := range a.U {
			fmt.Fprintf(&b, "%016x,", math.Float64bits(u))
		}
		b.WriteString(";")
	}
	return b.String()
}

// referenceSystem builds the serial reference for one campaign at one kill
// point: a fresh core.System over its own copy of the crashed store file,
// recovering a fabricated checkpoint that holds exactly the surviving
// records. Recovery of a checkpoint replays the records through the
// ordinary serial Publish/Submit path — the exact definition of the
// campaign's canonical state.
func referenceSystem(t *testing.T, scope string, recs []wal.Record, storeSrc string, m int) (*core.System, *store.Store) {
	t.Helper()
	refRoot := t.TempDir()
	storePath := filepath.Join(refRoot, "store.json")
	copyFileIfExists(t, storeSrc, storePath)
	copyFileIfExists(t, storeSrc+".delta", storePath+".delta")
	st, err := store.Open(storePath, m)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(core.Config{
		Store:           st,
		ProfileScope:    scope,
		GoldenCount:     crashKnobs.golden,
		HITSize:         crashKnobs.hit,
		AnswersPerTask:  crashKnobs.perTask,
		RerunEvery:      crashKnobs.rerun,
		CheckpointEvery: -1,
		WALSegmentBytes: crashKnobs.segBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	walDir := filepath.Join(refRoot, "wal")
	if len(recs) > 0 {
		if err := wal.WriteCheckpoint(walDir, recs[len(recs)-1].Seq, recs); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.Recover(walDir); err != nil {
		t.Fatal(err)
	}
	return sys, st
}

// TestMultiCampaignCrashRecoveryExact is the acceptance test: a registry
// hosting three active campaigns with overlapping workers is killed at
// randomized per-campaign points (a third of the cuts tear a record
// mid-frame); each reboot must recover every campaign bit-identical to its
// serial reference and must not move the shared worker store by a byte.
func TestMultiCampaignCrashRecoveryExact(t *testing.T) {
	root := t.TempDir()
	cfg := crashConfig(root)
	reg, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"alpha", "beta", "gamma"}
	var m int
	for i, name := range names {
		sys, err := reg.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		m = sys.Domains().Size()
		if err := sys.Publish(synthTasks(m, 30+6*i, 5*i)); err != nil {
			t.Fatal(err)
		}
	}
	driveInterleaved(t, reg, names, 9, 42)
	// Sanity: the workload actually exercised cross-campaign carryover.
	if reg.Store().Len() == 0 {
		t.Fatal("workload profiled no workers into the shared store")
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	recs := make(map[string][]wal.Record, len(names))
	spans := make(map[string]map[uint64]frameSpan, len(names))
	for _, name := range names {
		dir := filepath.Join(root, campaignsDir, name)
		recs[name] = readStream(t, dir)
		if len(recs[name]) < 20 {
			t.Fatalf("campaign %s produced only %d records", name, len(recs[name]))
		}
		spans[name] = segmentSpans(t, dir)
	}
	storeSrc := filepath.Join(root, storeFile)

	r := mathx.NewRand(7)
	type cut struct {
		surviving int
		torn      int64
	}
	randCut := func(n int) cut {
		c := cut{surviving: int(r.Float64() * float64(n+1))}
		if c.surviving > n {
			c.surviving = n
		}
		if c.surviving < n && r.Float64() < 0.35 {
			c.torn = 1 + int64(r.Float64()*16)
		}
		return c
	}
	const killPoints = 12
	for kill := 0; kill < killPoints; kill++ {
		cuts := make(map[string]cut, len(names))
		for _, name := range names {
			if kill == killPoints-1 {
				// The last kill is the graceful image: everything survives.
				cuts[name] = cut{surviving: len(recs[name])}
			} else {
				cuts[name] = randCut(len(recs[name]))
			}
		}
		crashRoot := t.TempDir()
		copyFileIfExists(t, storeSrc, filepath.Join(crashRoot, storeFile))
		copyFileIfExists(t, storeSrc+".delta", filepath.Join(crashRoot, storeFile+".delta"))
		for _, name := range names {
			buildCrashCampaign(t, filepath.Join(root, campaignsDir, name),
				filepath.Join(crashRoot, campaignsDir, name),
				recs[name], spans[name], cuts[name].surviving, cuts[name].torn)
		}

		booted, err := Open(crashConfig(crashRoot))
		if err != nil {
			t.Fatalf("kill %d: boot over crash image: %v", kill, err)
		}
		for _, name := range names {
			c := cuts[name]
			sys, err := booted.Get(name)
			if err != nil {
				t.Fatalf("kill %d: campaign %s: %v", kill, name, err)
			}
			info := sys.Recovery()
			if info.Records != c.surviving {
				t.Fatalf("kill %d: campaign %s recovered %d records, want %d (torn=%d)",
					kill, name, info.Records, c.surviving, c.torn)
			}
			if c.torn > 0 && !info.TornTail {
				t.Errorf("kill %d: campaign %s: torn cut not reported as torn tail", kill, name)
			}
			ref, refStore := referenceSystem(t, name, recs[name][:c.surviving], storeSrc, m)
			if got, want := sys.Fingerprint(), ref.Fingerprint(); got != want {
				t.Fatalf("kill %d: campaign %s (surviving=%d torn=%d): recovered state differs from serial reference\nrecovered: %.300s\nreference: %.300s",
					kill, name, c.surviving, c.torn, got, want)
			}
			if err := ref.Close(); err != nil {
				t.Fatal(err)
			}
			if err := refStore.Close(); err != nil {
				t.Fatal(err)
			}
		}
		// Replay must treat the shared store as read-only: the booted
		// registry's store equals a plain load of the crashed store files.
		check, err := store.Open(storeSrc, m)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := storePrint(booted.Store()), storePrint(check); got != want {
			t.Fatalf("kill %d: boot replay mutated the shared worker store", kill)
		}
		if err := check.Close(); err != nil {
			t.Fatal(err)
		}
		if err := booted.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashRecoversUnmergedProfiling pins the closed crash window: a
// worker's golden answers are durable before their profiling merge reaches
// the store, and a crash in between used to lose exactly that one merge
// (the old "bounded loss" carve-out). Since the merge-once profile ledger,
// replaying the gauntlet REPAIRS the store: the profile ID is absent from
// the truncated delta log, so replay re-applies the identical merge onto
// the identical prior record and the repaired store is bit-equal to the
// live pre-crash store. A later campaign sees the worker and serves them
// regular tasks — no gauntlet re-run, no loss at all.
func TestCrashRecoversUnmergedProfiling(t *testing.T) {
	root := t.TempDir()
	cfg := crashConfig(root)
	reg, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := reg.Create("solo")
	if err != nil {
		t.Fatal(err)
	}
	m := sys.Domains().Size()
	tasks := synthTasks(m, 16, 0)
	if err := sys.Publish(tasks); err != nil {
		t.Fatal(err)
	}
	profile(t, sys, "w")
	// A couple of regular answers after profiling, so the WAL tail is past
	// the gauntlet.
	batch, err := sys.Request("w", 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range batch {
		if err := sys.Submit("w", tk.ID, tk.Truth); err != nil {
			t.Fatal(err)
		}
	}
	answers := sys.AnswerCount()
	liveStore := storePrint(reg.Store())
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash image: the full campaign WAL, but the store's delta log loses
	// its final record — the worker's profiling merge.
	crashRoot := t.TempDir()
	srcDir := filepath.Join(root, campaignsDir, "solo")
	dstDir := filepath.Join(crashRoot, campaignsDir, "solo")
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		copyFileIfExists(t, filepath.Join(srcDir, e.Name()), filepath.Join(dstDir, e.Name()))
	}
	deltaData, err := os.ReadFile(filepath.Join(root, storeFile+".delta"))
	if err != nil {
		t.Fatal(err)
	}
	var payloads [][]byte
	if _, err := wal.DecodeFrames(deltaData, func(p []byte) error {
		payloads = append(payloads, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(payloads) == 0 {
		t.Fatal("no store deltas logged — profiling never merged?")
	}
	var truncated []byte
	for _, p := range payloads[:len(payloads)-1] {
		truncated = wal.EncodeFrame(truncated, p)
	}
	if err := os.WriteFile(filepath.Join(crashRoot, storeFile+".delta"), truncated, 0o644); err != nil {
		t.Fatal(err)
	}

	booted, err := Open(crashConfig(crashRoot))
	if err != nil {
		t.Fatalf("boot over lost-merge image: %v", err)
	}
	defer booted.Close()
	rec, err := booted.Get("solo")
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.AnswerCount(); got != answers {
		t.Fatalf("recovered %d answers, want %d", got, answers)
	}
	if _, ok := booted.Store().Worker("w"); !ok {
		t.Fatal("store forgot the worker — replay did not repair the dropped merge delta")
	}
	if got := storePrint(booted.Store()); got != liveStore {
		t.Fatalf("repaired store differs from live pre-crash store\nrepaired: %.300s\nlive:     %.300s", got, liveStore)
	}
	// In the recovered campaign the worker IS profiled (replay reran the
	// golden estimate in memory): real tasks, no gauntlet.
	goldenSet := map[int]bool{}
	for _, id := range rec.GoldenTasks() {
		goldenSet[id] = true
	}
	got, err := rec.Request("w", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("recovered campaign served the profiled worker nothing")
	}
	for _, tk := range got {
		if goldenSet[tk.ID] {
			t.Fatalf("recovered campaign re-served golden task %d to a replay-profiled worker", tk.ID)
		}
	}
	// A brand-new campaign sees the repaired record and skips the gauntlet
	// — the crash cost nothing.
	next, err := booted.Create("next")
	if err != nil {
		t.Fatal(err)
	}
	if err := next.Publish(synthTasks(m, 16, 3)); err != nil {
		t.Fatal(err)
	}
	nextGolden := map[int]bool{}
	for _, id := range next.GoldenTasks() {
		nextGolden[id] = true
	}
	fresh, err := next.Request("w", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) == 0 {
		t.Fatal("new campaign served nothing")
	}
	for _, tk := range fresh {
		if nextGolden[tk.ID] {
			t.Fatalf("new campaign re-ran the gauntlet (golden task %d) for a worker the repaired store knows", tk.ID)
		}
	}
}
