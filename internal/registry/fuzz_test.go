package registry

import (
	"net/url"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzValidateName pins the safety contract of campaign names: whatever
// bytes arrive from the network, ValidateName must never panic, and any
// name it accepts must be safe to use verbatim as a directory name under
// the WAL root and as a URL path segment — no separators, no traversal,
// no escaping needed, bounded length.
func FuzzValidateName(f *testing.F) {
	for _, seed := range []string{
		"", "default", "alpha", "a-b_c", "0", "..", ".", "a/b", "a\\b",
		"-lead", "_lead", "café", "a b", "a\x00b", "campaigns", "archived",
		strings.Repeat("x", MaxNameLen), strings.Repeat("x", MaxNameLen+1),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		err := ValidateName(name)
		if err != nil {
			return
		}
		if len(name) == 0 || len(name) > MaxNameLen {
			t.Fatalf("accepted name %q with length %d", name, len(name))
		}
		if filepath.Base(name) != name || name == "." || name == ".." {
			t.Fatalf("accepted name %q is not a clean path component", name)
		}
		if strings.ContainsAny(name, "/\\\x00") {
			t.Fatalf("accepted name %q contains a separator or NUL", name)
		}
		if url.PathEscape(name) != name {
			t.Fatalf("accepted name %q needs URL escaping", name)
		}
		if name[0] == '-' || name[0] == '_' {
			t.Fatalf("accepted name %q with a leading %c", name, name[0])
		}
	})
}
