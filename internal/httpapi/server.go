package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"docs"
)

// Package httpapi implements the docs-server HTTP API as an importable
// handler, so the real server (cmd/docs-server), the end-to-end tests and
// the open-loop load harness (docs-bench -exp http) all drive the exact
// same routing, decoding and stats code.
//
// Server exposes a campaign registry over a JSON HTTP API: one process
// hosts many named DOCS campaigns (each a full serving core with its own
// WAL namespace) over one shared worker store, so a worker profiled in one
// campaign keeps their domain-quality profile in every other.
//
//	GET  /campaigns                      → list hosted campaigns
//	POST /campaigns  {"name":"photos"}   → create an empty campaign
//	POST /c/{campaign}/publish  {"tasks":[...]}   (creates the campaign if absent)
//	GET  /c/{campaign}/request?worker=W&k=20      → {"tasks":[...]}
//	POST /c/{campaign}/submit   {"worker":"W","task":0,"choice":1}
//	POST /c/{campaign}/submit-batch  {"answers":[...]} or binary (docs/protocol.md)
//	GET  /c/{campaign}/result?task=0              → current inferred truth
//	GET  /c/{campaign}/results                    → final inference
//	GET  /c/{campaign}/worker?id=W                → quality vector
//	GET  /c/{campaign}/stats                      → serving counters
//	POST /c/{campaign}/archive                    → end the campaign for good
//	GET  /domains, GET /healthz                   → registry-wide
//
// The pre-registry single-campaign paths (/publish, /request, /submit,
// /result, /results, /worker, /stats) remain as aliases for the campaign
// named "default".
//
// Handlers take no server-wide lock: each request resolves its campaign in
// the registry (an RLock'd map read) and the campaign's docs.System is
// safe for concurrent use. Whether a campaign is published is always read
// from the serving core itself — the server caches no publish flag, so
// /stats, /request and the recovery-restore path can never disagree about
// a half-applied publish.
type Server struct {
	reg      *docs.Registry
	cfg      docs.Config
	maxBatch int
	start    time.Time

	// rateMu guards the per-campaign observations behind the /stats recent
	// answer rate; it is touched only by /stats calls, never the hot path.
	// The hibernation hook deletes rate entries while holding the campaign
	// transition lock, so the order is c.mu before rateMu — which is why
	// handleStats must resolve its campaign (a potential wake, taking c.mu)
	// BEFORE taking rateMu, and use CampaignResident (no wake) under it.
	// docs-lint enforces the order from the declaration below.
	//
	//docs:lockorder c.mu < s.rateMu
	rateMu sync.Mutex
	rates  map[string]rateObs
}

// rateObs is the previous /stats observation for one campaign.
type rateObs struct {
	at      time.Time
	answers int64
}

// defaultCampaign backs the legacy single-campaign paths.
const defaultCampaign = "default"

// Options tunes the handler independently of the campaign Config.
type Options struct {
	// MaxBatch clamps how many items one POST /submit-batch materializes
	// (0 = DefaultMaxBatch). Items past the clamp are rejected per-item.
	MaxBatch int
}

// New opens the campaign registry and returns the server. Close it when
// done.
func New(cfg docs.Config, opts Options) (*Server, error) {
	reg, err := docs.OpenRegistry(cfg)
	if err != nil {
		return nil, err
	}
	// The default campaign always exists (unless a previous process
	// archived it), so the legacy single-campaign paths behave exactly as
	// they did before the registry: /stats answers published=false and
	// /request answers 409 until the first /publish.
	if _, err := reg.Campaign(defaultCampaign); errors.Is(err, docs.ErrCampaignNotFound) {
		if _, err := reg.Create(defaultCampaign); err != nil {
			reg.Close()
			return nil, err
		}
	}
	maxBatch := opts.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	//docs:allow clock uptime anchor for /stats; reporting only, never durable
	s := &Server{reg: reg, cfg: cfg, maxBatch: maxBatch, start: time.Now(), rates: make(map[string]rateObs)}
	// Prune the per-campaign /stats rate observation whenever a campaign
	// leaves memory, so the map is bounded by the resident set even when
	// an LRU cap or idle sweeps cycle thousands of campaigns through. The
	// callback only touches s.rates (never the registry): it runs with
	// the campaign's transition lock held.
	//
	//docs:holds c.mu
	reg.OnHibernate(func(name string) {
		s.rateMu.Lock()
		delete(s.rates, name)
		s.rateMu.Unlock()
	})
	return s, nil
}

// Close shuts the registry down gracefully (drain workers, flush + fsync
// every campaign's WAL, release the shared store).
func (s *Server) Close() error { return s.reg.Close() }

// Registry exposes the underlying campaign registry (the server's own
// handle — callers must not Close it).
func (s *Server) Registry() *docs.Registry { return s.reg }

func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /campaigns", s.handleCampaigns)
	mux.HandleFunc("POST /campaigns", s.handleCreate)
	for _, route := range []struct {
		pattern string
		h       http.HandlerFunc
	}{
		{"POST /publish", s.handlePublish},
		{"GET /request", s.handleRequest},
		{"POST /submit", s.handleSubmit},
		{"POST /submit-batch", s.handleSubmitBatch},
		{"GET /result", s.handleResult},
		{"GET /results", s.handleResults},
		{"GET /worker", s.handleWorker},
		{"GET /stats", s.handleStats},
	} {
		// Every campaign endpoint is registered twice: under its namespace
		// and at the legacy root path, which serves the "default" campaign.
		mux.HandleFunc(route.pattern, route.h)
		method, path, _ := strings.Cut(route.pattern, " ")
		mux.HandleFunc(method+" /c/{campaign}"+path, route.h)
	}
	mux.HandleFunc("POST /c/{campaign}/archive", s.handleArchive)
	mux.HandleFunc("GET /domains", s.handleDomains)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// campaignName resolves which campaign a request addresses: the {campaign}
// path segment, or the default campaign on the legacy alias paths.
func campaignName(r *http.Request) string {
	if name := r.PathValue("campaign"); name != "" {
		return name
	}
	return defaultCampaign
}

// campaign resolves the request's campaign, writing the error response
// (404 unknown, 410 archived) when it cannot.
func (s *Server) campaign(w http.ResponseWriter, r *http.Request) (*docs.System, string, bool) {
	name := campaignName(r)
	sys, err := s.reg.Campaign(name)
	switch {
	case err == nil:
		return sys, name, true
	case errors.Is(err, docs.ErrCampaignArchived):
		writeErr(w, http.StatusGone, err)
	case errors.Is(err, docs.ErrCampaignNotFound):
		writeErr(w, http.StatusNotFound, err)
	default:
		writeErr(w, http.StatusInternalServerError, err)
	}
	return nil, name, false
}

type taskJSON struct {
	ID          int      `json:"id"`
	Text        string   `json:"text"`
	Choices     []string `json:"choices"`
	GoldenTruth int      `json:"golden_truth"`
}

type publishRequest struct {
	Tasks []taskJSON `json:"tasks"`
}

type campaignJSON struct {
	Name             string `json:"name"`
	Archived         bool   `json:"archived"`
	Published        bool   `json:"published"`
	Answers          int64  `json:"answers"`
	RecoveredRecords int    `json:"recovered_records"`
}

func (s *Server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	infos := s.reg.Campaigns()
	out := make([]campaignJSON, len(infos))
	for i, in := range infos {
		out[i] = campaignJSON{Name: in.Name, Archived: in.Archived, Published: in.Published,
			Answers: in.Answers, RecoveredRecords: in.RecoveredRecords}
	}
	writeJSON(w, http.StatusOK, map[string]any{"campaigns": out})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return
	}
	if _, err := s.reg.Create(req.Name); err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, docs.ErrCampaignExists) {
			code = http.StatusConflict
		}
		writeErr(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"created": req.Name})
}

func (s *Server) handleArchive(w http.ResponseWriter, r *http.Request) {
	name := campaignName(r)
	if err := s.reg.Archive(name); err != nil {
		code := http.StatusBadRequest
		switch {
		case errors.Is(err, docs.ErrCampaignNotFound):
			code = http.StatusNotFound
		case errors.Is(err, docs.ErrCampaignArchived):
			code = http.StatusGone
		}
		writeErr(w, code, err)
		return
	}
	// Drop the campaign's rate observation: an archived campaign never
	// serves /stats again, so its entry would otherwise live for the life
	// of the process — archive-heavy deployments would leak an entry per
	// retired campaign.
	s.rateMu.Lock()
	delete(s.rates, name)
	s.rateMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"archived": name})
}

func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	var req publishRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return
	}
	if len(req.Tasks) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("no tasks"))
		return
	}
	tasks := make([]docs.Task, 0, len(req.Tasks))
	for _, t := range req.Tasks {
		tasks = append(tasks, docs.Task{ID: t.ID, Text: t.Text, Choices: t.Choices, GoldenTruth: t.GoldenTruth})
	}
	name := campaignName(r)
	sys, err := s.reg.Campaign(name)
	if errors.Is(err, docs.ErrCampaignNotFound) {
		// Publishing to a fresh name creates the campaign — the one-call
		// path a requester actually wants. The payload was validated above
		// so a bad request never leaves an empty campaign behind.
		sys, err = s.reg.Create(name)
		if errors.Is(err, docs.ErrCampaignExists) {
			// Lost a race with a concurrent publish to the same fresh
			// name: re-resolve and fall through to the published check,
			// so the loser gets the same 409 a plain double publish gets.
			sys, err = s.reg.Campaign(name)
		}
	}
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, docs.ErrCampaignArchived) {
			code = http.StatusGone
		}
		writeErr(w, code, err)
		return
	}
	if sys.Published() {
		writeErr(w, http.StatusConflict, fmt.Errorf("tasks already published"))
		return
	}
	// docs.System.Publish is itself exclusive and rejects a second
	// publication, so a racing pair of publishes cannot both succeed; the
	// check above only provides the friendlier 409 for the common case.
	// There is no server-side published flag to resync: every reader asks
	// the serving core, so even a publish that fails after taking effect
	// (a durability error on the WAL append) leaves /stats, /request and
	// recovery agreeing on the core's actual state.
	if err := sys.Publish(tasks); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"campaign":  name,
		"published": len(tasks),
		"golden":    sys.GoldenTaskIDs(),
	})
}

func (s *Server) handleRequest(w http.ResponseWriter, r *http.Request) {
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing worker"))
		return
	}
	k := 0
	if ks := r.URL.Query().Get("k"); ks != "" {
		var err error
		if k, err = strconv.Atoi(ks); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid k: %w", err))
			return
		}
	}
	sys, _, ok := s.campaign(w, r)
	if !ok {
		return
	}
	if !sys.Published() {
		writeErr(w, http.StatusConflict, fmt.Errorf("no tasks published"))
		return
	}
	tasks, err := sys.Request(worker, k)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	out := make([]taskJSON, 0, len(tasks))
	for _, t := range tasks {
		// Golden truth is never leaked to workers.
		out = append(out, taskJSON{ID: t.ID, Text: t.Text, Choices: t.Choices, GoldenTruth: docs.NoTruth})
	}
	writeJSON(w, http.StatusOK, map[string]any{"tasks": out})
}

type submitRequest struct {
	Worker string `json:"worker"`
	Task   int    `json:"task"`
	Choice int    `json:"choice"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return
	}
	sys, _, ok := s.campaign(w, r)
	if !ok {
		return
	}
	if !sys.Published() {
		writeErr(w, http.StatusConflict, fmt.Errorf("no tasks published"))
		return
	}
	if err := sys.Submit(req.Worker, req.Task, req.Choice); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "accepted"})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.URL.Query().Get("task"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid task: %w", err))
		return
	}
	sys, _, ok := s.campaign(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, sys.CurrentResult(id))
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	sys, _, ok := s.campaign(w, r)
	if !ok {
		return
	}
	// Results infers over a snapshot of the answer log; submits keep
	// flowing while inference and response encoding run.
	results, err := sys.Results()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

func (s *Server) handleWorker(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing id"))
		return
	}
	sys, _, ok := s.campaign(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"worker":  id,
		"quality": sys.WorkerQuality(id),
		"domains": sys.DomainNames(),
	})
}

func (s *Server) handleDomains(w http.ResponseWriter, r *http.Request) {
	// The domain taxonomy is a property of the knowledge base, shared by
	// every campaign, so the endpoint stays registry-wide.
	names, err := docs.DomainNames()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"domains": names})
}

// statsJSON is the per-campaign /stats payload: goroutine-safe counters
// describing the serving state. answers_per_sec_recent covers the window
// since the previous /stats call for the same campaign (equal to the
// lifetime rate on the first call).
type statsJSON struct {
	Campaign            string  `json:"campaign"`
	Published           bool    `json:"published"`
	Answers             int64   `json:"answers"`
	OpenTasks           int     `json:"open_tasks"`
	IndexEpoch          uint64  `json:"index_epoch"`
	LeasesActive        int64   `json:"leases_active"`
	SnapshotEpoch       uint64  `json:"snapshot_epoch"`
	RerunsCompleted     int64   `json:"reruns_completed"`
	RerunsFailed        int64   `json:"reruns_failed"`
	UptimeSeconds       float64 `json:"uptime_seconds"`
	AnswersPerSec       float64 `json:"answers_per_sec"`
	AnswersPerSecRecent float64 `json:"answers_per_sec_recent"`
	Goroutines          int     `json:"goroutines"`
	// Campaigns is the serveable census (live + hibernated, excluding
	// archived), kept for compatibility; the three fields after it split
	// it by lifecycle state, and the wake fields describe hibernated-
	// campaign reactivations (see docs/multi-campaign.md).
	Campaigns           int     `json:"campaigns"`
	CampaignsLive       int     `json:"campaigns_live"`
	CampaignsHibernated int     `json:"campaigns_hibernated"`
	CampaignsArchived   int     `json:"campaigns_archived"`
	WakesTotal          int64   `json:"wakes_total"`
	WakeP50Ms           float64 `json:"wake_p50_ms"`
	WakeP99Ms           float64 `json:"wake_p99_ms"`

	// Batched-submit counters: batches_total accepted POST /submit-batch
	// calls, batch_answers_total the answers they carried,
	// batch_answers_mean their ratio (0 until the first batch). Single
	// submits leave all three at zero.
	BatchesTotal      int64   `json:"batches_total"`
	BatchAnswersTotal int64   `json:"batch_answers_total"`
	BatchAnswersMean  float64 `json:"batch_answers_mean"`

	// Durability counters, all zero when the server runs without -wal-dir.
	WALEnabled            bool   `json:"wal_enabled"`
	WALLastSeq            uint64 `json:"wal_last_seq"`
	CheckpointsCompleted  int64  `json:"checkpoints_completed"`
	CheckpointsFailed     int64  `json:"checkpoints_failed"`
	SnapshotsCompleted    int64  `json:"snapshots_completed"`
	SnapshotsFailed       int64  `json:"snapshots_failed"`
	SnapshotLastSeq       uint64 `json:"snapshot_last_seq"`
	RecoveredRecords      int    `json:"recovered_records"`
	RecoveredTornTail     bool   `json:"recovered_torn_tail"`
	RecoveredFromSnapshot bool   `json:"recovered_from_snapshot"`
	RecoverySnapshotSeq   uint64 `json:"recovery_snapshot_seq"`
	// RecoverySnapshotRejected is the loud fallback signal: non-empty when
	// boot found a snapshot it could not trust and replayed the full log.
	RecoverySnapshotRejected string  `json:"recovery_snapshot_rejected,omitempty"`
	RecoverySeconds          float64 `json:"recovery_seconds"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	sys, name, ok := s.campaign(w, r)
	if !ok {
		return
	}
	liveC, hibC, archC := s.reg.CampaignCounts()
	wakesTotal, wakeP50, wakeP99 := s.reg.WakeStats()
	// The whole observation happens under rateMu so concurrent /stats
	// calls on one campaign see monotone (time, answers) pairs and the
	// recent rate can never go negative.
	s.rateMu.Lock()
	st := sys.Stats()
	//docs:allow clock /stats uptime and rate-window timestamps; reporting only, never durable
	now := time.Now()
	uptime := now.Sub(s.start).Seconds()
	rec := sys.Recovery()
	out := statsJSON{
		Campaign: name,
		// Published is read from the serving core — the same source of
		// truth Publish, Request and WAL recovery use — so a half-applied
		// publish (applied in memory, durability error on the log append)
		// can never make /stats disagree with serving behavior.
		Published:                sys.Published(),
		Answers:                  st.Answers,
		OpenTasks:                st.OpenTasks,
		IndexEpoch:               st.IndexEpoch,
		LeasesActive:             st.LeasesActive,
		SnapshotEpoch:            st.SnapshotEpoch,
		RerunsCompleted:          st.RerunsCompleted,
		RerunsFailed:             st.RerunsFailed,
		UptimeSeconds:            uptime,
		Goroutines:               runtime.NumGoroutine(),
		Campaigns:                liveC + hibC,
		CampaignsLive:            liveC,
		CampaignsHibernated:      hibC,
		CampaignsArchived:        archC,
		WakesTotal:               wakesTotal,
		WakeP50Ms:                float64(wakeP50) / float64(time.Millisecond),
		WakeP99Ms:                float64(wakeP99) / float64(time.Millisecond),
		BatchesTotal:             st.BatchesTotal,
		BatchAnswersTotal:        st.BatchAnswersTotal,
		WALEnabled:               st.WALEnabled,
		WALLastSeq:               st.WALLastSeq,
		CheckpointsCompleted:     st.CheckpointsCompleted,
		CheckpointsFailed:        st.CheckpointsFailed,
		SnapshotsCompleted:       st.SnapshotsCompleted,
		SnapshotsFailed:          st.SnapshotsFailed,
		SnapshotLastSeq:          st.SnapshotLastSeq,
		RecoveredRecords:         rec.Records,
		RecoveredTornTail:        rec.TornTail,
		RecoveredFromSnapshot:    rec.SnapshotUsed,
		RecoverySnapshotSeq:      rec.SnapshotSeq,
		RecoverySnapshotRejected: rec.SnapshotRejected,
		RecoverySeconds:          rec.Seconds,
	}
	if uptime > 0 {
		out.AnswersPerSec = float64(st.Answers) / uptime
	}
	if st.BatchesTotal > 0 {
		out.BatchAnswersMean = float64(st.BatchAnswersTotal) / float64(st.BatchesTotal)
	}
	prev, seen := s.rates[name]
	if !seen {
		out.AnswersPerSecRecent = out.AnswersPerSec
	} else if dt := now.Sub(prev.at).Seconds(); dt > 0 {
		out.AnswersPerSecRecent = float64(st.Answers-prev.answers) / dt
	}
	// Observations are recorded only for campaigns that resolved above —
	// /stats probes against unknown names 404 before reaching this point
	// and must never grow the map — and handleArchive plus the registry's
	// hibernation hook delete a campaign's entry when it leaves memory, so
	// the map is bounded by RESIDENT campaigns. The residency re-check
	// runs under rateMu to close the retirement race: if the campaign was
	// archived or hibernated after this handler resolved it, either the
	// re-check sees the flip and skips the write, or the write lands first
	// and the retirement's delete (which takes rateMu after the flip)
	// removes it — a non-resident campaign's entry can never survive. The
	// check must be CampaignResident, not Campaign: a Campaign call here
	// would wake a hibernated campaign right back up (and deadlock against
	// the hibernation hook, which takes rateMu while holding the
	// campaign's transition lock).
	if s.reg.CampaignResident(name) {
		s.rates[name] = rateObs{at: now, answers: st.Answers}
	}
	s.rateMu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// statusFor maps a serving error to an HTTP status: durability failures
// are the server's fault (500), everything else is a rejected input (400).
func statusFor(err error) int {
	if errors.Is(err, docs.ErrDurability) {
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are out; nothing more to do but note it.
		fmt.Printf("docs-server: encode response: %v\n", err)
	}
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
