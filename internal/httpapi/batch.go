package httpapi

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"docs"
	"docs/internal/wal"
)

// DefaultMaxBatch is how many items one POST /submit-batch materializes
// unless -max-batch overrides it.
const DefaultMaxBatch = 256

// BatchContentType selects the binary batch framing (docs/protocol.md);
// any other content type is decoded as the JSON schema.
const BatchContentType = "application/x-docs-batch"

// maxBatchItemBytes is the body budget per admitted batch item. It bounds
// the whole request body (via http.MaxBytesReader) to maxBatch items of
// generous size plus slack for framing, so neither decoder can be made to
// buffer an unbounded body regardless of what the client claims.
const maxBatchItemBytes = 1 << 10

type batchAnswerJSON struct {
	Worker string `json:"worker"`
	Task   int    `json:"task"`
	Choice int    `json:"choice"`
}

type batchRequest struct {
	Answers []batchAnswerJSON `json:"answers"`
}

type batchItemStatus struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

type batchResponse struct {
	Campaign string            `json:"campaign"`
	Accepted int               `json:"accepted"`
	Rejected int               `json:"rejected"`
	Statuses []batchItemStatus `json:"statuses"`
}

// handleSubmitBatch accepts N answers in one body — JSON by default, the
// WAL-framed binary encoding under BatchContentType — validates each item
// independently, and commits all accepted answers as ONE WAL group. The
// response carries one status per item: a bad item never poisons the
// batch (400 is reserved for bodies with no decodable items at all, 5xx
// for a broken durability promise). Items past the -max-batch clamp are
// rejected per-item, mirroring the ?k= clamp on the request path: client
// numbers never size server allocations.
func (s *Server) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, int64(s.maxBatch)*maxBatchItemBytes+4096)
	var answers []docs.Answer
	clamped := 0
	if strings.HasPrefix(r.Header.Get("Content-Type"), BatchContentType) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
			return
		}
		items, extra, err := wal.DecodeBatch(body, s.maxBatch)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		clamped = extra
		answers = make([]docs.Answer, len(items))
		for i, it := range items {
			answers[i] = docs.Answer{Worker: it.Worker, TaskID: it.Task, Choice: it.Choice}
		}
	} else {
		var req batchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
			return
		}
		if len(req.Answers) > s.maxBatch {
			clamped = len(req.Answers) - s.maxBatch
			req.Answers = req.Answers[:s.maxBatch]
		}
		answers = make([]docs.Answer, len(req.Answers))
		for i, a := range req.Answers {
			answers[i] = docs.Answer{Worker: a.Worker, TaskID: a.Task, Choice: a.Choice}
		}
	}
	if len(answers)+clamped == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	sys, name, ok := s.campaign(w, r)
	if !ok {
		return
	}
	if !sys.Published() {
		writeErr(w, http.StatusConflict, fmt.Errorf("no tasks published"))
		return
	}
	statuses, err := sys.SubmitBatch(answers)
	if err != nil {
		// Batch-level failure: the durability promise broke mid-group.
		// Per-item statuses would be a lie (acks imply durable), so the
		// whole batch answers 5xx; re-submitting is safe — already-applied
		// items are rejected as duplicates, item by item.
		writeErr(w, statusFor(err), err)
		return
	}
	out := batchResponse{Campaign: name, Statuses: make([]batchItemStatus, 0, len(statuses)+clamped)}
	for _, st := range statuses {
		if st.OK {
			out.Accepted++
			out.Statuses = append(out.Statuses, batchItemStatus{OK: true})
		} else {
			out.Rejected++
			out.Statuses = append(out.Statuses, batchItemStatus{Error: st.Error})
		}
	}
	for i := 0; i < clamped; i++ {
		out.Rejected++
		out.Statuses = append(out.Statuses, batchItemStatus{
			Error: fmt.Sprintf("batch clamped to %d items", s.maxBatch)})
	}
	writeJSON(w, http.StatusOK, out)
}
