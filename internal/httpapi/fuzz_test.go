package httpapi

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"docs"
	"docs/internal/registry"
)

// FuzzSubmitJSON drives arbitrary bytes through the POST /submit body — the
// one endpoint every worker on the platform hits — against a live published
// campaign. The handler must never panic and must answer every body with a
// well-formed JSON response in {200, 400}; anything else means hostile
// input reached deeper than the decode layer. Seed corpus under
// testdata/fuzz/FuzzSubmitJSON (checked in).
func FuzzSubmitJSON(f *testing.F) {
	srv, err := New(docs.Config{GoldenCount: -1, HITSize: 3, RerunEvery: -1}, Options{})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { srv.Close() })
	// Publish a minimal campaign so valid submits exercise the accept path.
	tasks := []docs.Task{
		{ID: 0, Text: "a or b", Choices: []string{"a", "b"}, GoldenTruth: docs.NoTruth},
		{ID: 1, Text: "c or d", Choices: []string{"c", "d"}, GoldenTruth: docs.NoTruth},
	}
	sys, err := srv.reg.Campaign(defaultCampaign)
	if err != nil {
		f.Fatal(err)
	}
	if err := sys.Publish(tasks); err != nil {
		f.Fatal(err)
	}
	handler := srv.Handler()

	f.Add(`{"worker":"w1","task":0,"choice":1}`)
	f.Add(`{"worker":"","task":0,"choice":0}`)
	f.Add(`{"worker":"w1","task":99,"choice":0}`)
	f.Add(`{"worker":"w1","task":0,"choice":-1}`)
	f.Add(`{"task":0}`)
	f.Add(`{}`)
	f.Add(``)
	f.Add(`[`)
	f.Add(`{"worker":"w1","task":1e309,"choice":0}`)
	f.Add("{\"worker\":\"\x00\",\"task\":0,\"choice\":0}")
	f.Add(`{"worker":"w1","task":"0","choice":0}`)
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/submit", strings.NewReader(body))
		rr := httptest.NewRecorder()
		handler.ServeHTTP(rr, req)
		if rr.Code != http.StatusOK && rr.Code != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 200 or 400", body, rr.Code)
		}
		if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("body %q: content-type %q", body, ct)
		}
		if !strings.HasPrefix(strings.TrimSpace(rr.Body.String()), "{") {
			t.Fatalf("body %q: non-JSON response %q", body, rr.Body.String())
		}
	})
}

// FuzzCampaignPath throws arbitrary methods, paths and bodies at the full
// campaign router. Whatever the campaign path segment decodes to — path
// traversal attempts, NULs, over-long names — the server must never panic,
// must answer every request, and must never have created a campaign whose
// name fails validation (which is what keeps hostile names out of the WAL
// root's directory namespace). Seed corpus under
// testdata/fuzz/FuzzCampaignPath (checked in).
func FuzzCampaignPath(f *testing.F) {
	srv, err := New(docs.Config{GoldenCount: -1, HITSize: 3, RerunEvery: -1}, Options{})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { srv.Close() })
	handler := srv.Handler()

	f.Add("GET", "/c/default/stats", "")
	f.Add("POST", "/c/new-camp/publish", `{"tasks":[{"id":0,"text":"a","choices":["a","b"],"golden_truth":-1}]}`)
	f.Add("POST", "/c/../publish", `{"tasks":[{"id":0,"text":"a","choices":["a","b"],"golden_truth":-1}]}`)
	f.Add("POST", "/c/%2e%2e%2fescape/publish", `{"tasks":[{"id":0,"text":"a","choices":["a","b"],"golden_truth":-1}]}`)
	f.Add("GET", "/c//request?worker=w", "")
	f.Add("GET", "/c/a%00b/stats", "")
	f.Add("POST", "/campaigns", `{"name":"ok-name"}`)
	f.Add("POST", "/campaigns", `{"name":"../escape"}`)
	f.Add("POST", "/c/x/archive", "")
	f.Add("GET", "/c/"+strings.Repeat("x", 200)+"/stats", "")
	f.Fuzz(func(t *testing.T, method, path, body string) {
		if _, err := url.ParseRequestURI(path); err != nil || path == "" || path[0] != '/' {
			t.Skip()
		}
		switch method {
		case http.MethodGet, http.MethodPost, http.MethodPut, http.MethodDelete:
		default:
			t.Skip()
		}
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		rr := httptest.NewRecorder()
		handler.ServeHTTP(rr, req)
		if rr.Code < 200 || rr.Code > 599 {
			t.Fatalf("%s %q: status %d", method, path, rr.Code)
		}
		for _, info := range srv.reg.Campaigns() {
			if err := registry.ValidateName(info.Name); err != nil {
				t.Fatalf("%s %q created campaign with illegal name %q: %v", method, path, info.Name, err)
			}
		}
	})
}
