package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"docs"
)

func testServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	srv, err := New(docs.Config{GoldenCount: -1, HITSize: 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

func doJSON(t *testing.T, method, url string, body any) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s %s: %v", method, url, err)
	}
	return resp, out
}

func publishBody() map[string]any {
	return map[string]any{
		"tasks": []map[string]any{
			{"id": 0, "text": "Does Michael Jordan win more NBA championships than Kobe Bryant?",
				"choices": []string{"yes", "no"}, "golden_truth": -1},
			{"id": 1, "text": "Which food contains more calories, Chocolate or Honey?",
				"choices": []string{"Chocolate", "Honey"}, "golden_truth": -1},
			{"id": 2, "text": "Compare the height of Mount Everest and K2.",
				"choices": []string{"Everest", "K2"}, "golden_truth": -1},
		},
	}
}

// TestServerLifecycle drives the legacy single-campaign paths, which alias
// the "default" campaign — the pre-registry API must keep working
// unchanged.
func TestServerLifecycle(t *testing.T) {
	ts, _ := testServer(t)

	if resp, _ := doJSON(t, "GET", ts.URL+"/healthz", nil); resp.StatusCode != 200 {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// Requests before publish are rejected.
	if resp, _ := doJSON(t, "GET", ts.URL+"/request?worker=w1", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("pre-publish request = %d, want 409", resp.StatusCode)
	}

	resp, out := doJSON(t, "POST", ts.URL+"/publish", publishBody())
	if resp.StatusCode != 200 {
		t.Fatalf("publish = %d: %s", resp.StatusCode, out["error"])
	}

	// Double publish conflicts.
	if resp, _ := doJSON(t, "POST", ts.URL+"/publish", publishBody()); resp.StatusCode != http.StatusConflict {
		t.Errorf("double publish = %d, want 409", resp.StatusCode)
	}

	// Worker requests tasks.
	resp, out = doJSON(t, "GET", ts.URL+"/request?worker=w1&k=2", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("request = %d", resp.StatusCode)
	}
	var batch []struct {
		ID          int      `json:"id"`
		Choices     []string `json:"choices"`
		GoldenTruth int      `json:"golden_truth"`
	}
	if err := json.Unmarshal(out["tasks"], &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 {
		t.Fatalf("requested 2 tasks, got %d", len(batch))
	}
	for _, b := range batch {
		if b.GoldenTruth != -1 {
			t.Error("golden truth leaked to worker")
		}
	}

	// Submit answers.
	for _, b := range batch {
		resp, out = doJSON(t, "POST", ts.URL+"/submit",
			map[string]any{"worker": "w1", "task": b.ID, "choice": 0})
		if resp.StatusCode != 200 {
			t.Fatalf("submit = %d: %s", resp.StatusCode, out["error"])
		}
	}
	// Duplicate answer rejected.
	resp, _ = doJSON(t, "POST", ts.URL+"/submit",
		map[string]any{"worker": "w1", "task": batch[0].ID, "choice": 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("duplicate submit = %d, want 400", resp.StatusCode)
	}

	// Current result.
	resp, _ = doJSON(t, "GET", ts.URL+"/result?task=0", nil)
	if resp.StatusCode != 200 {
		t.Errorf("result = %d", resp.StatusCode)
	}

	// Worker profile and domains.
	resp, out = doJSON(t, "GET", ts.URL+"/worker?id=w1", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("worker = %d", resp.StatusCode)
	}
	var domains []string
	if err := json.Unmarshal(out["domains"], &domains); err != nil {
		t.Fatal(err)
	}
	if len(domains) != 26 {
		t.Errorf("domains = %d, want 26", len(domains))
	}

	// Final results.
	resp, out = doJSON(t, "GET", ts.URL+"/results", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("results = %d", resp.StatusCode)
	}
	var results []docs.Result
	if err := json.Unmarshal(out["results"], &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Errorf("results = %d tasks, want 3", len(results))
	}
}

func TestServerValidation(t *testing.T) {
	ts, _ := testServer(t)
	if resp, _ := doJSON(t, "POST", ts.URL+"/publish", map[string]any{"tasks": []any{}}); resp.StatusCode != 400 {
		t.Errorf("empty publish = %d, want 400", resp.StatusCode)
	}
	req, _ := http.NewRequest("POST", ts.URL+"/publish", bytes.NewBufferString("{broken"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("broken JSON = %d, want 400", resp.StatusCode)
	}
	if resp, _ := doJSON(t, "GET", ts.URL+"/request", nil); resp.StatusCode != 400 {
		t.Errorf("missing worker = %d, want 400", resp.StatusCode)
	}
	if resp, _ := doJSON(t, "GET", ts.URL+"/result?task=abc", nil); resp.StatusCode != 400 {
		t.Errorf("bad task id = %d, want 400", resp.StatusCode)
	}
	if resp, _ := doJSON(t, "GET", ts.URL+"/worker", nil); resp.StatusCode != 400 {
		t.Errorf("missing worker id = %d, want 400", resp.StatusCode)
	}
	// Campaign-level validation.
	if resp, _ := doJSON(t, "GET", ts.URL+"/c/no-such/request?worker=w", nil); resp.StatusCode != 404 {
		t.Errorf("unknown campaign request = %d, want 404", resp.StatusCode)
	}
	if resp, _ := doJSON(t, "POST", ts.URL+"/campaigns", map[string]any{"name": "bad name"}); resp.StatusCode != 400 {
		t.Errorf("illegal campaign name = %d, want 400", resp.StatusCode)
	}
	if resp, _ := doJSON(t, "POST", ts.URL+"/c/%2e%2e/publish", publishBody()); resp.StatusCode != 400 {
		t.Errorf("publish to traversal name = %d, want 400", resp.StatusCode)
	}
}

func TestServerStats(t *testing.T) {
	ts, _ := testServer(t)

	resp, out := doJSON(t, "GET", ts.URL+"/stats", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("stats = %d", resp.StatusCode)
	}
	var published bool
	if err := json.Unmarshal(out["published"], &published); err != nil {
		t.Fatal(err)
	}
	if published {
		t.Error("stats reports published before publish")
	}

	if resp, _ := doJSON(t, "POST", ts.URL+"/publish", publishBody()); resp.StatusCode != 200 {
		t.Fatalf("publish = %d", resp.StatusCode)
	}
	for _, w := range []string{"s1", "s2"} {
		for task := 0; task < 3; task++ {
			resp, out := doJSON(t, "POST", ts.URL+"/submit",
				map[string]any{"worker": w, "task": task, "choice": 0})
			if resp.StatusCode != 200 {
				t.Fatalf("submit = %d: %s", resp.StatusCode, out["error"])
			}
		}
	}

	resp, out = doJSON(t, "GET", ts.URL+"/stats", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("stats = %d", resp.StatusCode)
	}
	var answers int64
	if err := json.Unmarshal(out["answers"], &answers); err != nil {
		t.Fatal(err)
	}
	if answers != 6 {
		t.Errorf("stats answers = %d, want 6", answers)
	}
	var epoch uint64
	if err := json.Unmarshal(out["snapshot_epoch"], &epoch); err != nil {
		t.Fatal(err)
	}
	if epoch == 0 {
		t.Error("snapshot epoch did not advance")
	}
	if err := json.Unmarshal(out["published"], &published); err != nil {
		t.Fatal(err)
	}
	if !published {
		t.Error("stats reports unpublished after publish")
	}
	var name string
	if err := json.Unmarshal(out["campaign"], &name); err != nil {
		t.Fatal(err)
	}
	if name != defaultCampaign {
		t.Errorf("legacy /stats reports campaign %q, want %q", name, defaultCampaign)
	}
}

// TestStatsSharesPublishSourceOfTruth is the regression test for the
// cached-published-flag bug: the server used to mirror "published" into an
// atomic bool, so a publish that took effect in the core without the
// server's involvement (WAL recovery restore, or a publish whose HTTP
// acknowledgment failed mid-way) left /stats reporting published=false
// while /request served tasks. Now every reader asks the serving core, so
// a publish applied behind the handlers' backs must be visible to /stats
// and /request alike, immediately.
func TestStatsSharesPublishSourceOfTruth(t *testing.T) {
	ts, srv := testServer(t)

	// Publish through the registry handle directly — the handlers never
	// see it, exactly like a recovery restore or a half-acknowledged
	// publish.
	sys, err := srv.reg.Campaign(defaultCampaign)
	if err != nil {
		t.Fatal(err)
	}
	var tasks []docs.Task
	raw := publishBody()["tasks"].([]map[string]any)
	for _, m := range raw {
		tasks = append(tasks, docs.Task{
			ID: m["id"].(int), Text: m["text"].(string),
			Choices: m["choices"].([]string), GoldenTruth: m["golden_truth"].(int),
		})
	}
	if err := sys.Publish(tasks); err != nil {
		t.Fatal(err)
	}

	resp, out := doJSON(t, "GET", ts.URL+"/stats", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("stats = %d", resp.StatusCode)
	}
	var published bool
	if err := json.Unmarshal(out["published"], &published); err != nil {
		t.Fatal(err)
	}
	if !published {
		t.Fatal("/stats reports published=false for a campaign the core has published")
	}
	if resp, _ := doJSON(t, "GET", ts.URL+"/request?worker=w1&k=1", nil); resp.StatusCode != 200 {
		t.Fatalf("request = %d; /stats and /request disagree on published", resp.StatusCode)
	}
	// And a second publish over HTTP conflicts — same source of truth.
	if resp, _ := doJSON(t, "POST", ts.URL+"/publish", publishBody()); resp.StatusCode != http.StatusConflict {
		t.Fatalf("publish over core-published campaign = %d, want 409", resp.StatusCode)
	}
}

// TestServerMultiCampaign exercises the namespaced routes end to end: two
// campaigns publish different task sets, serve different workers, report
// separate stats, and archive independently — while the default campaign
// and the legacy aliases stay untouched.
func TestServerMultiCampaign(t *testing.T) {
	ts, _ := testServer(t)

	// Publishing to a fresh name creates the campaign.
	resp, out := doJSON(t, "POST", ts.URL+"/c/photos/publish", publishBody())
	if resp.StatusCode != 200 {
		t.Fatalf("publish photos = %d: %s", resp.StatusCode, out["error"])
	}
	// Explicit create, then publish.
	if resp, _ := doJSON(t, "POST", ts.URL+"/campaigns", map[string]any{"name": "ner"}); resp.StatusCode != 200 {
		t.Fatalf("create ner = %d", resp.StatusCode)
	}
	if resp, _ := doJSON(t, "POST", ts.URL+"/campaigns", map[string]any{"name": "ner"}); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate create = %d, want 409", resp.StatusCode)
	}
	if resp, out := doJSON(t, "POST", ts.URL+"/c/ner/publish", publishBody()); resp.StatusCode != 200 {
		t.Fatalf("publish ner = %d: %s", resp.StatusCode, out["error"])
	}

	// The campaigns are isolated: answers land in their own campaign.
	for i, name := range []string{"photos", "ner"} {
		resp, out := doJSON(t, "GET", ts.URL+"/c/"+name+"/request?worker=w&k=2", nil)
		if resp.StatusCode != 200 {
			t.Fatalf("request %s = %d", name, resp.StatusCode)
		}
		var rout struct {
			Tasks []struct {
				ID int `json:"id"`
			} `json:"tasks"`
		}
		raw, _ := json.Marshal(out)
		if err := json.Unmarshal(raw, &rout); err != nil {
			t.Fatal(err)
		}
		for j, tk := range rout.Tasks {
			if j > i {
				break // different per-campaign answer counts
			}
			if resp, out := doJSON(t, "POST", ts.URL+"/c/"+name+"/submit",
				map[string]any{"worker": "w", "task": tk.ID, "choice": 0}); resp.StatusCode != 200 {
				t.Fatalf("submit %s = %d: %s", name, resp.StatusCode, out["error"])
			}
		}
	}
	for i, name := range []string{"photos", "ner"} {
		resp, out := doJSON(t, "GET", ts.URL+"/c/"+name+"/stats", nil)
		if resp.StatusCode != 200 {
			t.Fatalf("stats %s = %d", name, resp.StatusCode)
		}
		var answers int64
		if err := json.Unmarshal(out["answers"], &answers); err != nil {
			t.Fatal(err)
		}
		if want := int64(i + 1); answers != want {
			t.Errorf("campaign %s has %d answers, want %d", name, answers, want)
		}
	}

	// The listing shows all three (default included), separately published.
	resp, out = doJSON(t, "GET", ts.URL+"/campaigns", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("campaigns = %d", resp.StatusCode)
	}
	var list []campaignJSON
	if err := json.Unmarshal(out["campaigns"], &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("campaigns = %+v, want default, ner, photos", list)
	}
	byName := map[string]campaignJSON{}
	for _, c := range list {
		byName[c.Name] = c
	}
	if byName[defaultCampaign].Published {
		t.Error("default campaign reported published; nothing was published to it")
	}
	if !byName["photos"].Published || !byName["ner"].Published {
		t.Error("named campaigns not reported published")
	}

	// Archive photos: gone for serving, still listed, ner unaffected.
	if resp, _ := doJSON(t, "POST", ts.URL+"/c/photos/archive", nil); resp.StatusCode != 200 {
		t.Fatalf("archive = %d", resp.StatusCode)
	}
	if resp, _ := doJSON(t, "GET", ts.URL+"/c/photos/request?worker=w2&k=1", nil); resp.StatusCode != http.StatusGone {
		t.Errorf("request archived = %d, want 410", resp.StatusCode)
	}
	if resp, _ := doJSON(t, "POST", ts.URL+"/c/photos/archive", nil); resp.StatusCode != http.StatusGone {
		t.Errorf("double archive = %d, want 410", resp.StatusCode)
	}
	if resp, _ := doJSON(t, "GET", ts.URL+"/c/ner/request?worker=w2&k=1", nil); resp.StatusCode != 200 {
		t.Errorf("ner after photos archive = %d, want 200", resp.StatusCode)
	}
	resp, out = doJSON(t, "GET", ts.URL+"/campaigns", nil)
	if err := json.Unmarshal(out["campaigns"], &list); err != nil {
		t.Fatal(err)
	}
	for _, c := range list {
		if c.Name == "photos" && !c.Archived {
			t.Error("archived campaign not flagged in the listing")
		}
	}
}

// TestServerConcurrentTraffic hammers the handlers from many goroutines
// across two campaigns; with -race it verifies the lock-free server plus
// the concurrent cores end to end over real HTTP.
func TestServerConcurrentTraffic(t *testing.T) {
	srv, err := New(docs.Config{GoldenCount: -1, HITSize: 3, AnswersPerTask: 4, AsyncRerun: true, RerunEvery: 10}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	hts := httptest.NewServer(srv.Handler())
	t.Cleanup(hts.Close)

	tasks := make([]map[string]any, 40)
	for i := range tasks {
		tasks[i] = map[string]any{
			"id": i, "text": fmt.Sprintf("is %d even or odd", i),
			"choices": []string{"even", "odd"}, "golden_truth": -1,
		}
	}
	campaigns := []string{"default", "other"}
	if resp, out := doJSON(t, "POST", hts.URL+"/publish", map[string]any{"tasks": tasks}); resp.StatusCode != 200 {
		t.Fatalf("publish = %d: %s", resp.StatusCode, out["error"])
	}
	if resp, out := doJSON(t, "POST", hts.URL+"/c/other/publish", map[string]any{"tasks": tasks}); resp.StatusCode != 200 {
		t.Fatalf("publish other = %d: %s", resp.StatusCode, out["error"])
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{}
			base := hts.URL + "/c/" + campaigns[g%2]
			for i := 0; i < 6; i++ {
				w := fmt.Sprintf("cw%d-%d", g, i)
				resp, err := client.Get(base + "/request?worker=" + w + "&k=3")
				if err != nil {
					errs <- err
					return
				}
				var rout struct {
					Tasks []struct {
						ID int `json:"id"`
					} `json:"tasks"`
				}
				err = json.NewDecoder(resp.Body).Decode(&rout)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				for _, tk := range rout.Tasks {
					var buf bytes.Buffer
					if err := json.NewEncoder(&buf).Encode(map[string]any{"worker": w, "task": tk.ID, "choice": tk.ID % 2}); err != nil {
						errs <- err
						return
					}
					sresp, err := client.Post(base+"/submit", "application/json", &buf)
					if err != nil {
						errs <- err
						return
					}
					sresp.Body.Close()
					rresp, err := client.Get(fmt.Sprintf("%s/result?task=%d", base, tk.ID))
					if err != nil {
						errs <- err
						return
					}
					rresp.Body.Close()
				}
				stresp, err := client.Get(base + "/stats")
				if err != nil {
					errs <- err
					return
				}
				stresp.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for _, name := range campaigns {
		resp, out := doJSON(t, "GET", hts.URL+"/c/"+name+"/results", nil)
		if resp.StatusCode != 200 {
			t.Fatalf("results %s = %d: %s", name, resp.StatusCode, out["error"])
		}
		var results []docs.Result
		if err := json.Unmarshal(out["results"], &results); err != nil {
			t.Fatal(err)
		}
		if len(results) != 40 {
			t.Errorf("results %s = %d tasks, want 40", name, len(results))
		}
	}
}

// TestLeasedRequestsOverHTTP drives the -lease-ttl serving mode end to
// end: a worker re-requesting before submitting gets disjoint tasks, the
// pool drains to empty, and /stats exposes the candidate-index and lease
// gauges (open_tasks, index_epoch, leases_active).
func TestLeasedRequestsOverHTTP(t *testing.T) {
	srv, err := New(docs.Config{GoldenCount: -1, HITSize: 2, LeaseTTL: time.Minute}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	if resp, out := doJSON(t, "POST", ts.URL+"/publish", publishBody()); resp.StatusCode != 200 {
		t.Fatalf("publish = %d: %s", resp.StatusCode, out["error"])
	}

	requestIDs := func() map[int]bool {
		t.Helper()
		resp, out := doJSON(t, "GET", ts.URL+"/request?worker=w&k=2", nil)
		if resp.StatusCode != 200 {
			t.Fatalf("request = %d: %s", resp.StatusCode, out["error"])
		}
		var tasks []struct {
			ID int `json:"id"`
		}
		if err := json.Unmarshal(out["tasks"], &tasks); err != nil {
			t.Fatal(err)
		}
		ids := make(map[int]bool, len(tasks))
		for _, tk := range tasks {
			ids[tk.ID] = true
		}
		return ids
	}

	first := requestIDs()
	if len(first) != 2 {
		t.Fatalf("first request returned %d tasks, want 2", len(first))
	}
	second := requestIDs()
	if len(second) != 1 {
		t.Fatalf("second request returned %d tasks, want the 1 unleased task", len(second))
	}
	for id := range second {
		if first[id] {
			t.Fatalf("second request re-assigned leased task %d", id)
		}
	}
	if third := requestIDs(); len(third) != 0 {
		t.Fatalf("third request returned %d tasks from a fully leased pool", len(third))
	}

	resp, out := doJSON(t, "GET", ts.URL+"/stats", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("stats = %d", resp.StatusCode)
	}
	intField := func(key string) int64 {
		t.Helper()
		var v int64
		if err := json.Unmarshal(out[key], &v); err != nil {
			t.Fatalf("stats %s: %v", key, err)
		}
		return v
	}
	if got := intField("open_tasks"); got != 3 {
		t.Fatalf("open_tasks = %d, want 3 (leases do not close tasks)", got)
	}
	if got := intField("leases_active"); got != 3 {
		t.Fatalf("leases_active = %d, want 3", got)
	}
	if got := intField("index_epoch"); got < 1 {
		t.Fatalf("index_epoch = %d, want >= 1", got)
	}
}

// TestStatsRateMapPruned is the rate-observation leak regression: the
// per-campaign map behind answers_per_sec_recent used to keep entries for
// archived campaigns forever (and nothing may create entries for unknown
// names probed by scanners) — an archive-heavy or probe-heavy deployment
// grew the map without bound.
func TestStatsRateMapPruned(t *testing.T) {
	ts, srv := testServer(t)

	// 404 probes against unknown campaign names must not touch the map.
	for i := 0; i < 5; i++ {
		resp, _ := doJSON(t, "GET", fmt.Sprintf("%s/c/nope%d/stats", ts.URL, i), nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("probe %d: status %d, want 404", i, resp.StatusCode)
		}
	}
	srv.rateMu.Lock()
	leaked := len(srv.rates)
	srv.rateMu.Unlock()
	if leaked != 0 {
		t.Fatalf("unknown-name probes left %d rate entries", leaked)
	}

	// A live campaign's /stats records an observation; archiving the
	// campaign must delete it.
	if resp, _ := doJSON(t, "POST", ts.URL+"/campaigns", map[string]string{"name": "ephemeral"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	if resp, _ := doJSON(t, "GET", ts.URL+"/c/ephemeral/stats", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
	srv.rateMu.Lock()
	_, present := srv.rates["ephemeral"]
	srv.rateMu.Unlock()
	if !present {
		t.Fatal("stats call did not record a rate observation")
	}
	if resp, _ := doJSON(t, "POST", ts.URL+"/c/ephemeral/archive", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("archive: status %d", resp.StatusCode)
	}
	srv.rateMu.Lock()
	_, present = srv.rates["ephemeral"]
	srv.rateMu.Unlock()
	if present {
		t.Fatal("archived campaign's rate observation leaked")
	}
}

// TestStatsHibernation is the hibernation face of the rate-map regression
// plus the /stats census split: hibernating a campaign must prune its rate
// observation (an LRU churning thousands of campaigns would otherwise grow
// the map without bound), the next /stats request must wake the campaign
// and serve normally, and the campaigns_live / campaigns_hibernated /
// wakes_total fields must track the lifecycle.
func TestStatsHibernation(t *testing.T) {
	srv, err := New(docs.Config{GoldenCount: -1, HITSize: 3, WALDir: t.TempDir()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	if resp, _ := doJSON(t, "POST", ts.URL+"/campaigns", map[string]string{"name": "nap"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	statField := func(out map[string]json.RawMessage, key string) int64 {
		t.Helper()
		var v int64
		if err := json.Unmarshal(out[key], &v); err != nil {
			t.Fatalf("stats %s: %v", key, err)
		}
		return v
	}
	resp, out := doJSON(t, "GET", ts.URL+"/c/nap/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
	// "default" + "nap", both resident, none hibernated, no wakes yet.
	if got := statField(out, "campaigns_live"); got != 2 {
		t.Fatalf("campaigns_live = %d, want 2", got)
	}
	if got := statField(out, "campaigns_hibernated"); got != 0 {
		t.Fatalf("campaigns_hibernated = %d, want 0", got)
	}
	if got := statField(out, "wakes_total"); got != 0 {
		t.Fatalf("wakes_total = %d, want 0", got)
	}
	srv.rateMu.Lock()
	_, present := srv.rates["nap"]
	srv.rateMu.Unlock()
	if !present {
		t.Fatal("stats call did not record a rate observation")
	}

	// Hibernation prunes the observation through the registry hook.
	if err := srv.Registry().Hibernate("nap"); err != nil {
		t.Fatal(err)
	}
	srv.rateMu.Lock()
	_, present = srv.rates["nap"]
	srv.rateMu.Unlock()
	if present {
		t.Fatal("hibernated campaign's rate observation leaked")
	}

	// A campaign-addressed request wakes it: /stats serves 200 and the
	// census plus wake counters move.
	resp, out = doJSON(t, "GET", ts.URL+"/c/nap/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats after hibernate: status %d (the wake contract says any request wakes)", resp.StatusCode)
	}
	if got := statField(out, "campaigns_live"); got != 2 {
		t.Fatalf("campaigns_live after wake = %d, want 2", got)
	}
	if got := statField(out, "wakes_total"); got != 1 {
		t.Fatalf("wakes_total after wake = %d, want 1", got)
	}
	if got := statField(out, "campaigns"); got != 2 {
		t.Fatalf("campaigns = %d, want 2 (live + hibernated, excluding archived)", got)
	}
}
