package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"docs"
	"docs/internal/wal"
)

// postBatch posts a body to /submit-batch and decodes the typed batch
// response (in-package, so the unexported response type is available).
func postBatch(t *testing.T, url, contentType string, body []byte) (*http.Response, batchResponse) {
	t.Helper()
	resp, err := http.Post(url+"/submit-batch", contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out batchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("decoding batch response %q: %v", raw, err)
		}
	}
	return resp, out
}

func jsonBatch(t *testing.T, answers []batchAnswerJSON) []byte {
	t.Helper()
	blob, err := json.Marshal(batchRequest{Answers: answers})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func binBatch(answers []batchAnswerJSON) []byte {
	recs := make([]wal.Record, len(answers))
	for i, a := range answers {
		recs[i] = wal.Record{Worker: a.Worker, Task: a.Task, Choice: a.Choice}
	}
	return wal.EncodeBatch(nil, recs)
}

// TestBatchSubmitJSONAndBinary drives the same answers through both wire
// encodings and checks the per-item statuses plus the /stats counters.
func TestBatchSubmitJSONAndBinary(t *testing.T) {
	ts, _ := testServer(t)
	if resp, out := doJSON(t, "POST", ts.URL+"/publish", publishBody()); resp.StatusCode != 200 {
		t.Fatalf("publish = %d: %s", resp.StatusCode, out["error"])
	}

	jsonAnswers := []batchAnswerJSON{
		{Worker: "wj", Task: 0, Choice: 0}, {Worker: "wj", Task: 1, Choice: 1}, {Worker: "wj", Task: 2, Choice: 0},
	}
	resp, out := postBatch(t, ts.URL, "application/json", jsonBatch(t, jsonAnswers))
	if resp.StatusCode != 200 {
		t.Fatalf("json batch = %d", resp.StatusCode)
	}
	if out.Accepted != 3 || out.Rejected != 0 || len(out.Statuses) != 3 {
		t.Fatalf("json batch response = %+v", out)
	}
	if out.Campaign != defaultCampaign {
		t.Fatalf("batch campaign = %q", out.Campaign)
	}

	binAnswers := []batchAnswerJSON{
		{Worker: "wb", Task: 0, Choice: 1}, {Worker: "wb", Task: 1, Choice: 0}, {Worker: "wb", Task: 2, Choice: 1},
	}
	resp, out = postBatch(t, ts.URL, BatchContentType, binBatch(binAnswers))
	if resp.StatusCode != 200 {
		t.Fatalf("binary batch = %d", resp.StatusCode)
	}
	if out.Accepted != 3 || out.Rejected != 0 {
		t.Fatalf("binary batch response = %+v", out)
	}

	// Both batches (and all six answers) show up in the campaign's stats.
	var st statsJSON
	mustGetJSON(t, ts.URL+"/stats", &st)
	if st.Answers != 6 {
		t.Fatalf("answers = %d, want 6", st.Answers)
	}
	if st.BatchesTotal != 2 || st.BatchAnswersTotal != 6 || st.BatchAnswersMean != 3 {
		t.Fatalf("batch stats = %d/%d/%.1f, want 2/6/3.0",
			st.BatchesTotal, st.BatchAnswersTotal, st.BatchAnswersMean)
	}
}

// TestBatchSubmitEmptyAndMalformed: a body with no decodable items is the
// one case the per-item contract does not cover — it must 400.
func TestBatchSubmitEmptyAndMalformed(t *testing.T) {
	ts, _ := testServer(t)
	if resp, out := doJSON(t, "POST", ts.URL+"/publish", publishBody()); resp.StatusCode != 200 {
		t.Fatalf("publish = %d: %s", resp.StatusCode, out["error"])
	}
	cases := []struct {
		name, contentType string
		body              []byte
	}{
		{"empty json answers", "application/json", []byte(`{"answers":[]}`)},
		{"missing answers key", "application/json", []byte(`{}`)},
		{"invalid json", "application/json", []byte(`{"answers":`)},
		{"binary magic only", BatchContentType, []byte("DBB1")},
		{"binary bad magic", BatchContentType, []byte("NOPE")},
		{"binary torn frame", BatchContentType, binBatch([]batchAnswerJSON{{Worker: "w", Task: 0}})[:8]},
	}
	for _, tc := range cases {
		resp, _ := postBatch(t, ts.URL, tc.contentType, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}

	// Unpublished campaign: a decodable batch still gets the 409 the
	// single-submit path answers.
	resp, _ := postBatch(t, ts.URL+"/c/ghostless", "application/json",
		jsonBatch(t, []batchAnswerJSON{{Worker: "w", Task: 0, Choice: 0}}))
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown campaign batch = %d, want 404", resp.StatusCode)
	}
}

// TestBatchSubmitClamp pins the DoS guard: a batch longer than -max-batch
// is truncated to the clamp — mirroring ?k= — with the overflow rejected
// per-item, on both wire encodings.
func TestBatchSubmitClamp(t *testing.T) {
	srv, err := New(docs.Config{GoldenCount: -1, HITSize: 3}, Options{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	if resp, out := doJSON(t, "POST", ts.URL+"/publish", publishBody()); resp.StatusCode != 200 {
		t.Fatalf("publish = %d: %s", resp.StatusCode, out["error"])
	}

	// Distinct workers per encoding: both passes run against one campaign,
	// and a repeated (worker, task) pair would be rejected as a duplicate.
	mkAnswers := func(enc string) []batchAnswerJSON {
		answers := make([]batchAnswerJSON, 10)
		for i := range answers {
			answers[i] = batchAnswerJSON{Worker: fmt.Sprintf("%s-w%d", enc, i), Task: i % 3, Choice: 0}
		}
		return answers
	}
	for _, enc := range []struct {
		name, contentType string
		body              []byte
	}{
		{"json", "application/json", jsonBatch(t, mkAnswers("json"))},
		{"binary", BatchContentType, binBatch(mkAnswers("bin"))},
	} {
		resp, out := postBatch(t, ts.URL, enc.contentType, enc.body)
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", enc.name, resp.StatusCode)
		}
		if out.Accepted != 4 || out.Rejected != 6 || len(out.Statuses) != 10 {
			t.Fatalf("%s: accepted/rejected/statuses = %d/%d/%d, want 4/6/10",
				enc.name, out.Accepted, out.Rejected, len(out.Statuses))
		}
		for i, st := range out.Statuses {
			if i < 4 && !st.OK {
				t.Fatalf("%s: item %d rejected: %s", enc.name, i, st.Error)
			}
			if i >= 4 && (st.OK || !strings.Contains(st.Error, "clamped to 4")) {
				t.Fatalf("%s: item %d = %+v, want clamp rejection", enc.name, i, st)
			}
		}
	}
	var st statsJSON
	mustGetJSON(t, ts.URL+"/stats", &st)
	if st.BatchAnswersTotal != 8 {
		t.Fatalf("batch_answers_total = %d, want 8 (two clamped batches of 4)", st.BatchAnswersTotal)
	}
}

// TestBatchSubmitMixedValidity: invalid items are rejected in place with
// a reason while their neighbours commit — and the accepted subset is
// durable: a restart recovers exactly those answers (with the batch
// counters rebuilt from the logged group).
func TestBatchSubmitMixedValidity(t *testing.T) {
	dir := t.TempDir()
	cfg := docs.Config{GoldenCount: -1, HITSize: 3, WALDir: dir}
	srv, err := New(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	if resp, out := doJSON(t, "POST", ts.URL+"/publish", publishBody()); resp.StatusCode != 200 {
		t.Fatalf("publish = %d: %s", resp.StatusCode, out["error"])
	}

	resp, out := postBatch(t, ts.URL, "application/json", jsonBatch(t, []batchAnswerJSON{
		{Worker: "w1", Task: 0, Choice: 0},
		{Worker: "w1", Task: 99, Choice: 0}, // unknown task
		{Worker: "w1", Task: 1, Choice: 1},
		{Worker: "", Task: 2, Choice: 0},   // empty worker
		{Worker: "w1", Task: 2, Choice: 9}, // choice out of range
		{Worker: "w1", Task: 2, Choice: 1},
	}))
	if resp.StatusCode != 200 {
		t.Fatalf("mixed batch = %d", resp.StatusCode)
	}
	wantOK := []bool{true, false, true, false, false, true}
	if len(out.Statuses) != len(wantOK) {
		t.Fatalf("%d statuses, want %d", len(out.Statuses), len(wantOK))
	}
	for i, st := range out.Statuses {
		if st.OK != wantOK[i] {
			t.Fatalf("item %d: ok=%v (%s), want ok=%v", i, st.OK, st.Error, wantOK[i])
		}
		if !st.OK && st.Error == "" {
			t.Fatalf("item %d rejected without a reason", i)
		}
	}
	if out.Accepted != 3 || out.Rejected != 3 {
		t.Fatalf("accepted/rejected = %d/%d, want 3/3", out.Accepted, out.Rejected)
	}
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: exactly the accepted subset was in the WAL group.
	srv2, err := New(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv2.Close() })
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(ts2.Close)
	var st statsJSON
	mustGetJSON(t, ts2.URL+"/stats", &st)
	if st.Answers != 3 {
		t.Fatalf("recovered answers = %d, want 3", st.Answers)
	}
	if st.BatchesTotal != 1 || st.BatchAnswersTotal != 3 {
		t.Fatalf("recovered batch counters = %d/%d, want 1/3", st.BatchesTotal, st.BatchAnswersTotal)
	}
}

// TestLegacySubmitUnchanged pins the pre-batch protocol byte for byte:
// the single-submit response body must be exactly what it was before the
// batch endpoint existed, and single-submit traffic must leave every
// batch counter at zero.
func TestLegacySubmitUnchanged(t *testing.T) {
	ts, _ := testServer(t)
	if resp, out := doJSON(t, "POST", ts.URL+"/publish", publishBody()); resp.StatusCode != 200 {
		t.Fatalf("publish = %d: %s", resp.StatusCode, out["error"])
	}
	resp, err := http.Post(ts.URL+"/submit", "application/json",
		strings.NewReader(`{"worker":"w1","task":0,"choice":1}`))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	if want := "{\"status\":\"accepted\"}\n"; string(body) != want {
		t.Fatalf("submit response = %q, want %q (legacy byte-identical)", body, want)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("submit content-type = %q", ct)
	}
	var st statsJSON
	mustGetJSON(t, ts.URL+"/stats", &st)
	if st.Answers != 1 {
		t.Fatalf("answers = %d, want 1", st.Answers)
	}
	if st.BatchesTotal != 0 || st.BatchAnswersTotal != 0 || st.BatchAnswersMean != 0 {
		t.Fatalf("single-submit traffic moved batch counters: %d/%d/%.1f",
			st.BatchesTotal, st.BatchAnswersTotal, st.BatchAnswersMean)
	}
}

func mustGetJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
