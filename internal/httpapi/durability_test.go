package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"docs"
)

// TestServerWALRestart is the end-to-end durability check: publish and
// collect answers over HTTP with -wal-dir armed, shut the system down,
// boot a second server over the same directory, and verify the campaign —
// tasks, answers, per-task results — came back without re-publishing. The
// /stats durability fields must reflect the recovery.
func TestServerWALRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := docs.Config{GoldenCount: -1, HITSize: 3, WALDir: dir, RerunEvery: 5}

	srv1, err := New(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	resp, _ := doJSON(t, "POST", ts1.URL+"/publish", publishBody())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("publish: %d", resp.StatusCode)
	}
	for i := 0; i < 4; i++ {
		w := fmt.Sprintf("w%d", i)
		resp, out := doJSON(t, "GET", ts1.URL+"/request?worker="+w+"&k=3", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request: %d", resp.StatusCode)
		}
		var batch struct {
			ID int `json:"id"`
		}
		var tasks []json.RawMessage
		if err := json.Unmarshal(out["tasks"], &tasks); err != nil {
			t.Fatal(err)
		}
		for _, raw := range tasks {
			if err := json.Unmarshal(raw, &batch); err != nil {
				t.Fatal(err)
			}
			resp, _ := doJSON(t, "POST", ts1.URL+"/submit",
				map[string]any{"worker": w, "task": batch.ID, "choice": batch.ID % 2})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("submit: %d", resp.StatusCode)
			}
		}
	}
	sys1, err := srv1.reg.Campaign(defaultCampaign)
	if err != nil {
		t.Fatal(err)
	}
	live := sys1.Stats()
	wantResults := map[int]docs.Result{}
	for id := 0; id < 3; id++ {
		wantResults[id] = sys1.CurrentResult(id)
	}
	ts1.Close()
	if err := srv1.Close(); err != nil { // graceful shutdown: flush + fsync
		t.Fatal(err)
	}

	srv2, err := New(cfg, Options{})
	if err != nil {
		t.Fatalf("reboot over WAL dir: %v", err)
	}
	t.Cleanup(func() { srv2.Close() })
	sys2, err := srv2.reg.Campaign(defaultCampaign)
	if err != nil {
		t.Fatal(err)
	}
	rec := sys2.Recovery()
	if !rec.Enabled || rec.TornTail {
		t.Fatalf("recovery = %+v, want enabled and clean", rec)
	}
	if !sys2.Published() {
		t.Fatal("recovered server does not know the campaign is published")
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	if got := sys2.Stats(); got.Answers != live.Answers {
		t.Fatalf("recovered %d answers, live had %d", got.Answers, live.Answers)
	}
	for id, want := range wantResults {
		got := sys2.CurrentResult(id)
		if got.Choice != want.Choice {
			t.Errorf("task %d: recovered choice %d, want %d", id, got.Choice, want.Choice)
		}
	}
	// A second publish must be rejected — the recovered campaign owns the
	// task set.
	resp, _ = doJSON(t, "POST", ts2.URL+"/publish", publishBody())
	if resp.StatusCode == http.StatusOK {
		t.Error("re-publish over a recovered campaign succeeded")
	}
	// Serving continues: stats advertise the WAL, recovery lag and the
	// recovered publish flag straight from the core.
	resp, out := doJSON(t, "GET", ts2.URL+"/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var st statsJSON
	raw, _ := json.Marshal(out)
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if !st.WALEnabled || st.RecoveredRecords == 0 || st.WALLastSeq == 0 {
		t.Errorf("stats missing durability fields: %+v", st)
	}
	if !st.Published {
		t.Error("/stats reports published=false after recovery restored the campaign")
	}
}

// TestServerMultiCampaignRestart reboots a server hosting several
// campaigns over one WAL root: every campaign must come back with its own
// answers, the shared worker store must keep carrying profiles across
// campaigns, and an archived campaign must stay archived.
func TestServerMultiCampaignRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := docs.Config{GoldenCount: -1, HITSize: 3, WALDir: dir, RerunEvery: 5}

	srv1, err := New(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	names := []string{"a1", "a2", "a3"}
	answers := map[string]int64{}
	for i, name := range names {
		if resp, out := doJSON(t, "POST", ts1.URL+"/c/"+name+"/publish", publishBody()); resp.StatusCode != 200 {
			t.Fatalf("publish %s = %d: %s", name, resp.StatusCode, out["error"])
		}
		for task := 0; task <= i; task++ {
			if resp, out := doJSON(t, "POST", ts1.URL+"/c/"+name+"/submit",
				map[string]any{"worker": "w", "task": task, "choice": 0}); resp.StatusCode != 200 {
				t.Fatalf("submit %s = %d: %s", name, resp.StatusCode, out["error"])
			}
			answers[name]++
		}
	}
	if resp, _ := doJSON(t, "POST", ts1.URL+"/c/a3/archive", nil); resp.StatusCode != 200 {
		t.Fatal("archive failed")
	}
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, err := New(cfg, Options{})
	if err != nil {
		t.Fatalf("reboot: %v", err)
	}
	t.Cleanup(func() { srv2.Close() })
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	resp, out := doJSON(t, "GET", ts2.URL+"/campaigns", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("campaigns = %d", resp.StatusCode)
	}
	var list []campaignJSON
	if err := json.Unmarshal(out["campaigns"], &list); err != nil {
		t.Fatal(err)
	}
	byName := map[string]campaignJSON{}
	for _, c := range list {
		byName[c.Name] = c
	}
	for _, name := range []string{"a1", "a2"} {
		c, ok := byName[name]
		if !ok {
			t.Fatalf("campaign %s missing after reboot", name)
		}
		if c.Archived || !c.Published || c.Answers != answers[name] {
			t.Errorf("campaign %s = %+v, want live, published, %d answers", name, c, answers[name])
		}
	}
	if c := byName["a3"]; !c.Archived {
		t.Errorf("a3 = %+v, want archived after reboot", c)
	}
	if resp, _ := doJSON(t, "GET", ts2.URL+"/c/a3/request?worker=w&k=1", nil); resp.StatusCode != http.StatusGone {
		t.Errorf("archived campaign request = %d, want 410", resp.StatusCode)
	}
	// Live campaigns serve on, with separate answer streams.
	if resp, _ := doJSON(t, "POST", ts2.URL+"/c/a1/submit",
		map[string]any{"worker": "w2", "task": 2, "choice": 1}); resp.StatusCode != 200 {
		t.Errorf("submit after reboot = %d", resp.StatusCode)
	}
}
