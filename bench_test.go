// Benchmarks mirroring the paper's evaluation. One Benchmark per table and
// figure wraps the corresponding experiment runner (in quick mode, so
// `go test -bench=.` completes in minutes; run cmd/docs-bench for the
// full-scale tables). Micro-benchmarks for the core algorithms follow.
package docs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"docs/internal/assign"
	"docs/internal/core"
	"docs/internal/crowd"
	"docs/internal/dve"
	"docs/internal/entitylink"
	"docs/internal/experiment"
	"docs/internal/kb"
	"docs/internal/mathx"
	"docs/internal/model"
	"docs/internal/truth"
)

const benchSeed = 20160412

func benchExperiment(b *testing.B, fn func(uint64, bool) (*experiment.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := fn(benchSeed, true); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per table and figure (Section 6) ---

func BenchmarkTable3DVE(b *testing.B)           { benchExperiment(b, experiment.Table3DVE) }
func BenchmarkFig3DomainDetection(b *testing.B) { benchExperiment(b, experiment.Fig3DomainDetection) }
func BenchmarkFig4aConvergence(b *testing.B)    { benchExperiment(b, experiment.Fig4aConvergence) }
func BenchmarkFig4bGoldenTasks(b *testing.B)    { benchExperiment(b, experiment.Fig4bGoldenTasks) }
func BenchmarkFig4cAnswers(b *testing.B)        { benchExperiment(b, experiment.Fig4cAnswersPerTask) }
func BenchmarkFig4dWorkerQuality(b *testing.B)  { benchExperiment(b, experiment.Fig4dWorkerQuality) }
func BenchmarkFig4eTIScalability(b *testing.B)  { benchExperiment(b, experiment.Fig4eTIScalability) }
func BenchmarkFig5TruthInference(b *testing.B)  { benchExperiment(b, experiment.Fig5TruthInference) }
func BenchmarkFig6CaseStudy(b *testing.B)       { benchExperiment(b, experiment.Fig6CaseStudy) }
func BenchmarkFig7aGoldenSelection(b *testing.B) {
	benchExperiment(b, experiment.Fig7aGoldenSelection)
}
func BenchmarkFig7bGoldenScalability(b *testing.B) {
	benchExperiment(b, experiment.Fig7bGoldenScalability)
}
func BenchmarkFig8Assignment(b *testing.B) { benchExperiment(b, experiment.Fig8Assignment) }
func BenchmarkFig8cOTAScalability(b *testing.B) {
	benchExperiment(b, experiment.Fig8cOTAScalability)
}
func BenchmarkAblationStudy(b *testing.B) { benchExperiment(b, experiment.AblationStudy) }

// --- Micro-benchmarks of the core algorithms ---

// BenchmarkDVEAlgorithm1 measures the paper's polynomial DP on a padded
// Wikifier-shaped input (4 entities × 20 candidates × 26 domains).
func BenchmarkDVEAlgorithm1(b *testing.B) {
	r := mathx.NewRand(1)
	const m, nEnt, c = 26, 4, 20
	ents := make([]dve.Entity, nEnt)
	for i := range ents {
		e := dve.Entity{Probs: r.Dirichlet(c, 1), H: make([][]float64, c)}
		for j := range e.H {
			h := make([]float64, m)
			for k := 0; k < m; k++ {
				if r.Float64() < 0.12 {
					h[k] = 1
				}
			}
			e.H[j] = h
		}
		ents[i] = e
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dve.Compute(ents, m)
	}
}

// BenchmarkDVEEnumeration is the exponential baseline on the same input
// shape, for the Table 3 contrast.
func BenchmarkDVEEnumeration(b *testing.B) {
	r := mathx.NewRand(1)
	const m, nEnt, c = 26, 3, 8 // kept small: cost is c^nEnt
	ents := make([]dve.Entity, nEnt)
	for i := range ents {
		e := dve.Entity{Probs: r.Dirichlet(c, 1), H: make([][]float64, c)}
		for j := range e.H {
			h := make([]float64, m)
			for k := 0; k < m; k++ {
				if r.Float64() < 0.12 {
					h[k] = 1
				}
			}
			e.H[j] = h
		}
		ents[i] = e
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dve.ComputeEnum(ents, m)
	}
}

// BenchmarkEntityLinking measures mention detection + disambiguation over
// the default KB.
func BenchmarkEntityLinking(b *testing.B) {
	linker := entitylink.New(kb.MustDefault())
	text := "Does Michael Jordan win more NBA championships than Kobe Bryant with the Chicago Bulls?"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linker.Link(text)
	}
}

func benchCampaign(b *testing.B, nTasks, nWorkers, perTask int) ([]*model.Task, *model.AnswerSet) {
	b.Helper()
	pop, err := crowd.NewPopulation(crowd.Config{NumWorkers: nWorkers, M: 20, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	r := pop.Rand()
	tasks := make([]*model.Task, nTasks)
	for i := range tasks {
		dom := make(model.DomainVector, 20)
		dom[r.Intn(20)] = 1
		tasks[i] = &model.Task{ID: i, Choices: []string{"a", "b"}, Domain: dom,
			Truth: r.Intn(2), TrueDomain: model.NoTruth}
	}
	as, err := crowd.Collect(tasks, pop, perTask)
	if err != nil {
		b.Fatal(err)
	}
	return tasks, as
}

// BenchmarkTruthInferIterative measures one full iterative TI run
// (1000 tasks × 10 answers, m = 20) — the Figure 4(e) unit.
func BenchmarkTruthInferIterative(b *testing.B) {
	tasks, as := benchCampaign(b, 1000, 100, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := truth.Infer(tasks, as, 20, truth.Options{MaxIter: 20, Epsilon: -1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalSubmit measures the per-answer incremental update
// (Section 4.2's O(m·|V(i)|) path).
func BenchmarkIncrementalSubmit(b *testing.B) {
	tasks, _ := benchCampaign(b, 1000, 100, 0)
	inc := truth.NewIncremental(20)
	for _, t := range tasks {
		if err := inc.AddTask(t); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := "w" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
		if err := inc.Submit(model.Answer{Worker: w, Task: i % 1000, Choice: i % 2}); err != nil {
			// Duplicate (worker, task) pairs appear once i wraps; rebuild.
			b.StopTimer()
			inc = truth.NewIncremental(20)
			for _, t := range tasks {
				_ = inc.AddTask(t)
			}
			b.StartTimer()
		}
	}
}

// BenchmarkAssignTopK measures one OTA decision over 10K candidate tasks
// (Figure 8(c)'s unit: benefit for all + linear top-k).
func BenchmarkAssignTopK(b *testing.B) {
	r := mathx.NewRand(5)
	const n, m = 10000, 20
	states := make([]*assign.TaskState, n)
	for i := range states {
		ts := &assign.TaskState{ID: i, R: model.DomainVector(r.Dirichlet(m, 0.5)), M: make([][]float64, m)}
		for k := 0; k < m; k++ {
			ts.M[k] = r.Dirichlet(2, 1)
		}
		s := make([]float64, 2)
		for k, rk := range ts.R {
			for j := range s {
				s[j] += rk * ts.M[k][j]
			}
		}
		ts.S = mathx.Normalize(s)
		states[i] = ts
	}
	q := make(model.QualityVector, m)
	for i := range q {
		q[i] = r.Range(0.4, 0.95)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assign.Assign(states, q, 20, nil)
	}
}

// --- Concurrent serving benchmarks ---

// serveTasks builds n two-choice tasks with precomputed one-hot domain
// vectors so Publish skips entity linking.
func serveTasks(m, n int) []*model.Task {
	tasks := make([]*model.Task, n)
	for i := range tasks {
		dom := make(model.DomainVector, m)
		dom[i%m] = 1
		tasks[i] = &model.Task{
			ID: i, Text: fmt.Sprintf("task %d", i), Choices: []string{"a", "b"},
			Domain: dom, Truth: model.NoTruth, TrueDomain: model.NoTruth,
		}
	}
	return tasks
}

// serveWorkload is one unit of the mixed serving benchmark: a fresh worker
// requests a HIT of 5 and submits answers for the first two tasks.
func serveWorkload(b *testing.B, n int64, request func(string, int) ([]*model.Task, error), submit func(string, int, int) error) {
	w := fmt.Sprintf("w%d", n)
	got, err := request(w, 5)
	if err != nil {
		b.Fatal(err)
	}
	for i, tk := range got {
		if i >= 2 {
			break
		}
		if err := submit(w, tk.ID, int(n)%2); err != nil {
			b.Fatal(err)
		}
	}
}

func newServeSystem(b *testing.B, cfg core.Config) *core.System {
	b.Helper()
	s, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Publish(serveTasks(s.Domains().Size(), 400)); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkParallelServe measures the concurrent serving core under a mixed
// Request/Submit workload (the tentpole target). Compare against
// BenchmarkSerializedServe, which runs the identical workload behind one
// global mutex — the seed's locking discipline.
func BenchmarkParallelServe(b *testing.B) {
	s := newServeSystem(b, core.Config{GoldenCount: -1, HITSize: 5, RerunEvery: 100})
	var ctr atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			serveWorkload(b, ctr.Add(1), s.Request, s.Submit)
		}
	})
}

// BenchmarkParallelServeWAL is BenchmarkParallelServe with the write-ahead
// log armed (group commit, no per-record fsync): every accepted submit is
// appended durably before it is acknowledged. The acceptance bar for the
// durability work is <= 20% ops/sec regression against BenchmarkParallelServe.
func BenchmarkParallelServeWAL(b *testing.B) {
	s := newServeSystemWAL(b, core.Config{GoldenCount: -1, HITSize: 5, RerunEvery: 100, CheckpointEvery: -1})
	defer s.Close()
	var ctr atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			serveWorkload(b, ctr.Add(1), s.Request, s.Submit)
		}
	})
}

// BenchmarkParallelServeWALAsyncRerun adds the async rerun on top of the
// WAL — the full production configuration of cmd/docs-server.
func BenchmarkParallelServeWALAsyncRerun(b *testing.B) {
	s := newServeSystemWAL(b, core.Config{GoldenCount: -1, HITSize: 5, RerunEvery: 100, CheckpointEvery: -1, AsyncRerun: true})
	defer s.Close()
	var ctr atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			serveWorkload(b, ctr.Add(1), s.Request, s.Submit)
		}
	})
}

func newServeSystemWAL(b *testing.B, cfg core.Config) *core.System {
	b.Helper()
	s, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Recover(b.TempDir()); err != nil {
		b.Fatal(err)
	}
	if err := s.Publish(serveTasks(s.Domains().Size(), 400)); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkParallelServeAsyncRerun is BenchmarkParallelServe with the
// periodic batch re-inference moved off the Submit path.
func BenchmarkParallelServeAsyncRerun(b *testing.B) {
	s := newServeSystem(b, core.Config{GoldenCount: -1, HITSize: 5, RerunEvery: 100, AsyncRerun: true})
	defer s.Close()
	var ctr atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			serveWorkload(b, ctr.Add(1), s.Request, s.Submit)
		}
	})
}

// BenchmarkSerializedServe funnels the identical workload through a single
// global mutex, reproducing the seed's System-wide lock for an in-repo
// before/after comparison.
func BenchmarkSerializedServe(b *testing.B) {
	s := newServeSystem(b, core.Config{GoldenCount: -1, HITSize: 5, RerunEvery: 100})
	var mu sync.Mutex
	var ctr atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			serveWorkload(b, ctr.Add(1),
				func(w string, k int) ([]*model.Task, error) {
					mu.Lock()
					defer mu.Unlock()
					return s.Request(w, k)
				},
				func(w string, id, c int) error {
					mu.Lock()
					defer mu.Unlock()
					return s.Submit(w, id, c)
				})
		}
	})
}

// BenchmarkBenefitAlloc measures one benefit evaluation with the one-shot
// API (fresh buffers per call); BenchmarkBenefitScratch reuses a Scratch as
// the assignment hot path does. The allocs/op delta is the point.
func benchBenefitState() (*assign.TaskState, model.QualityVector) {
	r := mathx.NewRand(9)
	const m = 26
	ts := &assign.TaskState{ID: 0, R: model.DomainVector(r.Dirichlet(m, 0.5)), M: make([][]float64, m)}
	for k := 0; k < m; k++ {
		ts.M[k] = r.Dirichlet(2, 1)
	}
	s := make([]float64, 2)
	for k, rk := range ts.R {
		for j := range s {
			s[j] += rk * ts.M[k][j]
		}
	}
	ts.S = mathx.Normalize(s)
	q := make(model.QualityVector, m)
	for i := range q {
		q[i] = r.Range(0.4, 0.95)
	}
	return ts, q
}

func BenchmarkBenefitAlloc(b *testing.B) {
	ts, q := benchBenefitState()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assign.Benefit(ts, q)
	}
}

func BenchmarkBenefitScratch(b *testing.B) {
	ts, q := benchBenefitState()
	var sc assign.Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assign.BenefitWith(ts, q, &sc)
	}
}

// BenchmarkGoldenAllocation measures the approximate Equation 11 solver at
// production scale (m = 26, n' = 20).
func BenchmarkGoldenAllocation(b *testing.B) {
	r := mathx.NewRand(7)
	tau := r.Dirichlet(26, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assign.GoldenAllocation(tau, 20)
	}
}

// BenchmarkPublicInferTruth measures the public offline API end to end
// (DVE + TI) on a small workload.
func BenchmarkPublicInferTruth(b *testing.B) {
	tasks := []Task{
		{ID: 0, Text: "Does Michael Jordan win more NBA championships than Kobe Bryant?",
			Choices: []string{"yes", "no"}, GoldenTruth: NoTruth},
		{ID: 1, Text: "Which food contains more calories, Chocolate or Honey?",
			Choices: []string{"Chocolate", "Honey"}, GoldenTruth: NoTruth},
	}
	var answers []Answer
	for _, w := range []string{"w1", "w2", "w3", "w4", "w5"} {
		for _, t := range tasks {
			answers = append(answers, Answer{Worker: w, TaskID: t.ID, Choice: 0})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := InferTruth(tasks, answers); err != nil {
			b.Fatal(err)
		}
	}
}
