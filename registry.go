package docs

import (
	"time"

	"docs/internal/registry"
	"docs/internal/wal"
)

// Campaign lifecycle errors, returned by Registry methods; test with
// errors.Is.
var (
	ErrCampaignNotFound = registry.ErrNotFound
	ErrCampaignArchived = registry.ErrArchived
	ErrCampaignExists   = registry.ErrExists
)

// Registry hosts many named campaigns in one process over one shared
// worker store. Each campaign is a full System — its own task set, golden
// selection, inference state and WAL namespace — while worker profiles
// carry across campaigns through the store (the paper's returning-worker
// semantics). All methods are safe for concurrent use.
type Registry struct {
	reg *registry.Registry
}

// CampaignInfo describes one hosted campaign.
type CampaignInfo struct {
	// Name is the campaign's registry key (also its URL path segment and
	// WAL directory name).
	Name string
	// Archived campaigns are closed for good: listed, never served.
	Archived bool
	// Hibernated campaigns are durable on disk but not resident in
	// memory; the next request wakes them (Campaign blocks on the wake).
	Hibernated bool
	// Published and Answers are the campaign's serving counters; for a
	// campaign archived before this process started they are zero (its log
	// is not replayed).
	Published bool
	Answers   int64
	// RecoveredRecords is how many WAL records the campaign's most recent
	// replay (boot or wake) applied, and Wakes how many times it has been
	// reactivated from hibernation this process.
	RecoveredRecords int
	Wakes            int
}

// OpenRegistry creates a campaign registry. Config fields apply to every
// campaign it hosts: WALDir becomes the registry root (per-campaign logs
// under <WALDir>/campaigns/<name>, replayed on open) and StorePath the
// shared worker store (defaulting to <WALDir>/store.json when WALDir is
// set, so durable registries get the persistent store recovery exactness
// relies on).
func OpenRegistry(cfg Config) (*Registry, error) {
	walSync := wal.SyncNever
	if cfg.WALSyncEveryBatch {
		walSync = wal.SyncEveryBatch
	}
	reg, err := registry.Open(registry.Config{
		WALDir:          cfg.WALDir,
		StorePath:       cfg.StorePath,
		GoldenCount:     cfg.GoldenCount,
		HITSize:         cfg.HITSize,
		AnswersPerTask:  cfg.AnswersPerTask,
		RerunEvery:      cfg.RerunEvery,
		AsyncRerun:      cfg.AsyncRerun,
		CheckpointEvery: cfg.CheckpointEvery,
		SnapshotEvery:   cfg.SnapshotEvery,
		WALSync:         walSync,
		LeaseTTL:        cfg.LeaseTTL,

		MaxLiveCampaigns: cfg.MaxLiveCampaigns,
		HibernateAfter:   cfg.HibernateAfter,
	})
	if err != nil {
		return nil, err
	}
	return &Registry{reg: reg}, nil
}

// Create registers a new campaign under the given name (letters, digits,
// '-' and '_', at most 64 bytes) and returns its System, ready for
// Publish. The campaign's WAL namespace is armed immediately on durable
// registries.
func (r *Registry) Create(name string) (*System, error) {
	sys, err := r.reg.Create(name)
	if err != nil {
		return nil, err
	}
	return &System{sys: sys}, nil
}

// Campaign returns the named campaign's System. The handle serves
// concurrently like any System; its lifetime is managed by the registry —
// use Archive or the registry's Close rather than System.Close.
func (r *Registry) Campaign(name string) (*System, error) {
	sys, err := r.reg.Get(name)
	if err != nil {
		return nil, err
	}
	return &System{sys: sys}, nil
}

// Campaigns lists every hosted campaign (live and archived), sorted by
// name.
func (r *Registry) Campaigns() []CampaignInfo {
	infos := r.reg.List()
	out := make([]CampaignInfo, len(infos))
	for i, in := range infos {
		out[i] = CampaignInfo{
			Name:             in.Name,
			Archived:         in.Archived,
			Hibernated:       in.Hibernated,
			Published:        in.Published,
			Answers:          in.Answers,
			RecoveredRecords: in.Recovered,
			Wakes:            in.Wakes,
		}
	}
	return out
}

// CampaignCount returns the number of serveable (non-archived) campaigns
// — resident plus hibernated — without querying each one's serving state.
func (r *Registry) CampaignCount() int { return r.reg.Live() }

// CampaignCounts returns the campaign census by lifecycle state: resident
// in memory, hibernated on disk, and archived.
func (r *Registry) CampaignCounts() (live, hibernated, archived int) {
	return r.reg.Counts()
}

// CampaignResident reports whether the named campaign is resident in
// memory right now, without waking it (unlike Campaign, which blocks on
// the wake). False for hibernated, archived and unknown campaigns.
func (r *Registry) CampaignResident(name string) bool { return r.reg.Resident(name) }

// Hibernate releases the named campaign's memory after writing a final
// state snapshot covering its whole log and fsyncing its WAL; the next
// request to the campaign wakes it (snapshot restore + WAL-suffix
// replay). A no-op on an already-hibernated campaign. Errors only on
// memory-only registries, unknown or archived campaigns, or when the
// final snapshot could not be written — in which case the campaign is
// hibernated anyway and the next wake pays a longer replay; state is
// never lost. Usually hibernation is automatic (Config.HibernateAfter,
// Config.MaxLiveCampaigns); this is the explicit handle.
func (r *Registry) Hibernate(name string) error { return r.reg.Hibernate(name) }

// WakeStats reports how many hibernated campaigns have been reactivated
// this process and the p50/p99 wake latency over the recent window.
func (r *Registry) WakeStats() (total int64, p50, p99 time.Duration) {
	return r.reg.WakeStats()
}

// OnHibernate registers fn to run after each campaign hibernation with
// the campaign's name; serving layers use it to prune per-campaign
// caches. The callback runs with the campaign's transition lock held —
// keep it quick and do not call back into the registry.
func (r *Registry) OnHibernate(fn func(name string)) { r.reg.OnHibernate(fn) }

// Archive ends a campaign for good: its serving core is drained and
// closed (WAL flushed and fsynced), and durable registries mark the
// campaign so later boots list it without replaying. Handles to the
// campaign fail after Archive.
func (r *Registry) Archive(name string) error { return r.reg.Archive(name) }

// Close shuts every live campaign down gracefully and releases the shared
// worker store. Campaign handles must not be used after Close.
func (r *Registry) Close() error { return r.reg.Close() }
