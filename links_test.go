package docs_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches the target of an inline markdown link or image:
// [text](target) / ![alt](target).
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownLinks fails on dead relative links in the user-facing
// markdown: README.md, everything under docs/, and the per-command
// READMEs. External (http/https/mailto) targets and pure in-page anchors
// are skipped; a relative target must exist as a file or directory,
// resolved against the linking document's own directory. CI runs this as
// the docs gate, so a rename or move that orphans a link fails the build.
func TestMarkdownLinks(t *testing.T) {
	var files []string
	files = append(files, "README.md")
	for _, glob := range []string{"docs/*.md", "cmd/*/*.md"} {
		matches, err := filepath.Glob(glob)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, matches...)
	}
	if len(files) < 2 {
		t.Fatalf("link check found only %d markdown files — glob set broken?", len(files))
	}
	checked := 0
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			// In-repo target: drop any fragment, resolve against the
			// document's directory.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(f), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: dead link %q (resolved %s): %v", f, m[1], resolved, err)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatalf("link check matched no relative links — regexp broken?")
	}
	t.Logf("checked %d relative links across %d files", checked, len(files))
}
