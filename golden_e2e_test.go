package docs

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"testing"

	"docs/internal/mathx"
)

var updateGolden = flag.Bool("update", false, "regenerate the expected section of testdata/campaign_golden.json")

// goldenCampaign is the checked-in synthetic campaign: inputs plus the
// expected outputs of running it through the full public pipeline.
type goldenCampaign struct {
	Description string             `json:"description"`
	Seed        uint64             `json:"seed"`
	Config      goldenConfig       `json:"config"`
	Workers     []goldenWorker     `json:"workers"`
	Tasks       []goldenTask       `json:"tasks"`
	Expected    goldenExpectations `json:"expected"`
}

type goldenConfig struct {
	GoldenCount    int `json:"golden_count"`
	HITSize        int `json:"hit_size"`
	AnswersPerTask int `json:"answers_per_task"`
	RerunEvery     int `json:"rerun_every"`
}

type goldenWorker struct {
	ID       string  `json:"id"`
	Accuracy float64 `json:"accuracy"`
}

type goldenTask struct {
	ID      int      `json:"id"`
	Text    string   `json:"text"`
	Choices []string `json:"choices"`
	// PlantedTruth is the simulation's hidden ground truth, used to
	// generate answers and evaluate accuracy; it is revealed to the system
	// (as GoldenTruth) only for tasks marked Golden.
	PlantedTruth int  `json:"planted_truth"`
	Golden       bool `json:"golden"`
}

type goldenExpectations struct {
	// Answers and GoldenAnswers are the exact collection counts.
	Answers       int `json:"answers"`
	GoldenAnswers int `json:"golden_answers"`
	// Evaluated is the number of non-golden tasks scored, Accuracy the
	// fraction inferred correctly (vs the planted truths).
	Evaluated int     `json:"evaluated"`
	Accuracy  float64 `json:"accuracy"`
	// TruthDigest is FNV-1a 64 over the inferred truth indices in task
	// order; ConfidenceDigest additionally folds in every confidence
	// float64 bit-for-bit. Any ulp of drift anywhere in DVE, OTA or TI
	// changes it.
	TruthDigest      string `json:"truth_digest"`
	ConfidenceDigest string `json:"confidence_digest"`
}

// TestGoldenCampaignRegression replays the checked-in campaign through
// Publish→Request→Submit→Results and compares the outcome — answer counts,
// accuracy, and float64-exact digests of the inferred truths — against the
// committed expectations. It pins the full serial pipeline: entity
// linking, DVE, golden selection and profiling, OTA, incremental TI with
// periodic batch reruns, and the final inference. Run with -update after
// an intentional algorithm change to regenerate the expected section.
func TestGoldenCampaignRegression(t *testing.T) {
	path := filepath.Join("testdata", "campaign_golden.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var gc goldenCampaign
	if err := json.Unmarshal(data, &gc); err != nil {
		t.Fatal(err)
	}

	sys, err := New(Config{
		GoldenCount:    gc.Config.GoldenCount,
		HITSize:        gc.Config.HITSize,
		AnswersPerTask: gc.Config.AnswersPerTask,
		RerunEvery:     gc.Config.RerunEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	tasks := make([]Task, len(gc.Tasks))
	planted := make(map[int]int, len(gc.Tasks))
	for i, tk := range gc.Tasks {
		truth := NoTruth
		if tk.Golden {
			truth = tk.PlantedTruth
		}
		tasks[i] = Task{ID: tk.ID, Text: tk.Text, Choices: tk.Choices, GoldenTruth: truth}
		planted[tk.ID] = tk.PlantedTruth
	}
	if err := sys.Publish(tasks); err != nil {
		t.Fatal(err)
	}
	goldenSet := map[int]bool{}
	for _, id := range sys.GoldenTaskIDs() {
		goldenSet[id] = true
	}

	// The drive is strictly deterministic: workers take turns in file
	// order, each submitting their whole batch, answers drawn from one
	// seeded generator. The loop ends when a full round serves nothing.
	r := mathx.NewRand(gc.Seed)
	answers, goldenAnswers := 0, 0
	for {
		served := 0
		for _, w := range gc.Workers {
			batch, err := sys.Request(w.ID, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, tk := range batch {
				served++
				choice := planted[tk.ID]
				if r.Float64() >= w.Accuracy {
					wrong := r.Intn(len(tk.Choices) - 1)
					if wrong >= choice {
						wrong++
					}
					choice = wrong
				}
				if err := sys.Submit(w.ID, tk.ID, choice); err != nil {
					t.Fatal(err)
				}
				if goldenSet[tk.ID] {
					goldenAnswers++
				} else {
					answers++
				}
			}
		}
		if served == 0 {
			break
		}
	}

	results, err := sys.Results()
	if err != nil {
		t.Fatal(err)
	}
	correct, evaluated := 0, 0
	truthHash := fnv.New64a()
	confHash := fnv.New64a()
	var buf [8]byte
	for _, res := range results {
		evaluated++
		if res.Choice == planted[res.TaskID] {
			correct++
		}
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(res.Choice)))
		truthHash.Write(buf[:])
		confHash.Write(buf[:])
		for _, c := range res.Confidence {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(c))
			confHash.Write(buf[:])
		}
	}
	got := goldenExpectations{
		Answers:          answers,
		GoldenAnswers:    goldenAnswers,
		Evaluated:        evaluated,
		Accuracy:         float64(correct) / float64(evaluated),
		TruthDigest:      fmt.Sprintf("%016x", truthHash.Sum64()),
		ConfidenceDigest: fmt.Sprintf("%016x", confHash.Sum64()),
	}

	if *updateGolden {
		gc.Expected = got
		out, err := json.MarshalIndent(&gc, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s: %+v", path, got)
		return
	}

	want := gc.Expected
	if got.Answers != want.Answers || got.GoldenAnswers != want.GoldenAnswers {
		t.Errorf("collected %d answers (%d golden), want %d (%d)",
			got.Answers, got.GoldenAnswers, want.Answers, want.GoldenAnswers)
	}
	if got.Evaluated != want.Evaluated {
		t.Errorf("evaluated %d tasks, want %d", got.Evaluated, want.Evaluated)
	}
	if math.Abs(got.Accuracy-want.Accuracy) > 1e-9 {
		t.Errorf("accuracy %.6f, want %.6f", got.Accuracy, want.Accuracy)
	}
	if got.TruthDigest != want.TruthDigest {
		t.Errorf("truth digest %s, want %s — inferred truths changed", got.TruthDigest, want.TruthDigest)
	}
	if got.ConfidenceDigest != want.ConfidenceDigest {
		t.Errorf("confidence digest %s, want %s — confidences drifted (run with -update if intentional)",
			got.ConfidenceDigest, want.ConfidenceDigest)
	}
}
