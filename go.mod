module docs

go 1.22
