#!/usr/bin/env bash
# Live-vs-recovered kill -9 end-to-end: build the real server, drive a
# contested campaign over HTTP (WAL + per-batch fsync, synchronous rerun),
# capture the LIVE /result and /results bytes, kill -9 the process, restart
# it over the same directory, and assert the recovered responses are
# byte-identical to the live ones. This is the black-box face of the
# bit-exact recovery contract the internal live-vs-recovered suites prove
# at float64-bit granularity; it exists so a regression that somehow slips
# past the fingerprint suites still fails loudly at the API surface.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'kill -9 $server_pid 2>/dev/null || true; rm -rf "$workdir"' EXIT
server_pid=""

echo "crash_e2e: building docs-server"
go build -o "$workdir/docs-server" ./cmd/docs-server

addr=127.0.0.1:18080
base="http://$addr"
start_server() {
    "$workdir/docs-server" -addr "$addr" -wal-dir "$workdir/data" -wal-fsync \
        -sync-rerun -golden 3 -hit 3 -redundancy 3 \
        -checkpoint-every -1 -snapshot-every -1 &
    server_pid=$!
    for _ in $(seq 1 100); do
        if curl -sf "$base/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "crash_e2e: server did not come up" >&2
    exit 2
}

start_server
echo "crash_e2e: driving contested campaign (pid $server_pid)"
python3 - "$base" <<'PYEOF'
import json, sys, urllib.request

base = sys.argv[1]

def call(method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(base + path, data=data, method=method)
    if data:
        req.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(req) as resp:
        return json.loads(resp.read())

# A contested task mix: sports questions with golden truths for the
# gauntlet plus open tasks the workers will split on.
sports = [
    "Does Michael Jordan win more NBA championships than Kobe Bryant?",
    "Did the Chicago Bulls win more championships than the Boston Celtics in the 1990s NBA?",
    "Compare the height of LeBron James and Stephen Curry.",
    "Is Tim Duncan a power forward in the NBA?",
    "Did Magic Johnson play for the Los Angeles Lakers?",
    "Is Shaquille O'Neal a center in the NBA?",
    "Did Larry Bird play for the Boston Celtics?",
    "Does Kareem Abdul-Jabbar score more points than Karl Malone in the NBA?",
    "Is Scottie Pippen a teammate of Michael Jordan on the Chicago Bulls?",
    "Did Hakeem Olajuwon win the NBA championship with the Houston Rockets?",
]
tasks = []
for i, text in enumerate(sports):
    golden = 0 if i < 4 else -1  # first four carry ground truth -> gauntlet pool
    tasks.append({"id": i, "text": text, "choices": ["yes", "no"], "golden_truth": golden})
out = call("POST", "/publish", {"tasks": tasks})
print("published:", out["published"], "golden:", out["golden"])

# Deterministic contested answering: worker w{i} answers by a fixed hash of
# (worker, task) so reruns of this script reproduce the same campaign.
for round_ in range(40):
    w = f"w{round_ % 5}"
    got = call("GET", f"/request?worker={w}&k=3")["tasks"]
    if not got:
        continue
    for t in got:
        choice = (hash_ := (len(w) * 31 + t["id"] * 7 + round_ // 5)) % 2
        call("POST", "/submit", {"worker": w, "task": t["id"], "choice": choice})
print("campaign driven")
PYEOF

echo "crash_e2e: capturing live responses"
curl -sf "$base/results" > "$workdir/live_results.json"
for task in 0 4 5 6; do
    curl -sf "$base/result?task=$task" > "$workdir/live_result_$task.json"
done

echo "crash_e2e: kill -9 $server_pid"
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true

start_server
echo "crash_e2e: comparing recovered responses (pid $server_pid)"
curl -sf "$base/results" > "$workdir/recovered_results.json"
for task in 0 4 5 6; do
    curl -sf "$base/result?task=$task" > "$workdir/recovered_result_$task.json"
done

fail=0
if ! cmp -s "$workdir/live_results.json" "$workdir/recovered_results.json"; then
    echo "crash_e2e: FAIL — /results diverged after kill -9" >&2
    diff <(head -c 2000 "$workdir/live_results.json") \
         <(head -c 2000 "$workdir/recovered_results.json") >&2 || true
    fail=1
fi
for task in 0 4 5 6; do
    if ! cmp -s "$workdir/live_result_$task.json" "$workdir/recovered_result_$task.json"; then
        echo "crash_e2e: FAIL — /result?task=$task diverged after kill -9" >&2
        diff "$workdir/live_result_$task.json" "$workdir/recovered_result_$task.json" >&2 || true
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    exit 1
fi

kill -9 "$server_pid" 2>/dev/null || true
echo "crash_e2e: OK — live and recovered /result bytes identical"
