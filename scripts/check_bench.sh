#!/usr/bin/env bash
# Guard against serving-core throughput regressions: run the fixed-
# iteration BenchmarkParallelServe and fail if ns/op exceeds the committed
# baseline (bench/baseline.txt) by more than the threshold (default 25%).
#
# The benchmark runs a fixed -benchtime=1490x so every measurement does
# identical work; the script takes the best of two runs to damp scheduler
# noise on shared CI machines. Override the headroom with
# BENCH_GUARD_THRESHOLD (a multiplier, e.g. 1.50) when a runner class is
# known to be slower than the reference machine in the baseline file.
set -euo pipefail
cd "$(dirname "$0")/.."

# Preflight: benchmark numbers from a tree that violates the determinism
# or lock-order contracts are not worth measuring. docs-lint findings
# print as file:line: analyzer: message and abort the run.
echo "check_bench: preflight docs-lint ./..."
go run ./cmd/docs-lint ./...

baseline_file=bench/baseline.txt
threshold=${BENCH_GUARD_THRESHOLD:-1.25}
iters=1490

base=$(awk '$1 == "BenchmarkParallelServe" {print $2}' "$baseline_file")
if [ -z "$base" ]; then
    echo "check_bench: no BenchmarkParallelServe entry in $baseline_file" >&2
    exit 2
fi

best=""
for run in 1 2; do
    out=$(go test -run '^$' -bench '^BenchmarkParallelServe$' -benchtime="${iters}x" -count=1 .)
    echo "$out"
    ns=$(echo "$out" | awk '/^BenchmarkParallelServe(-[0-9]+)?[[:space:]]/ {print $3; exit}')
    if [ -z "$ns" ]; then
        echo "check_bench: could not parse ns/op from benchmark output" >&2
        exit 2
    fi
    if [ -z "$best" ] || [ "$ns" -lt "$best" ]; then
        best=$ns
    fi
done

awk -v ns="$best" -v base="$base" -v thr="$threshold" 'BEGIN {
    limit = base * thr
    printf "check_bench: best %d ns/op, baseline %d ns/op, limit %.0f ns/op (x%.2f)\n", ns, base, limit, thr
    if (ns > limit) {
        printf "check_bench: FAIL — BenchmarkParallelServe regressed %.1f%% past the baseline\n", (ns / base - 1) * 100
        exit 1
    }
    printf "check_bench: OK (%+.1f%% vs baseline)\n", (ns / base - 1) * 100
}'

# Smoke path: the assignment experiment compares the indexed candidate
# set against the legacy scan and asserts every measured request's
# assignment identical between the two, so running it at all is a
# correctness check. Run-only — no latency threshold; machine-dependent
# speedups are reported, not gated.
echo "check_bench: smoke-running docs-bench -exp assign (run-only, no threshold)"
go run ./cmd/docs-bench -exp assign -quick

# Recovery smoke: boots the same logged campaign by full replay and by
# state snapshot and asserts the two fingerprints bit-identical before
# reporting timings, so running it at all is a correctness check too.
# Run-only — the speedup is machine-dependent and is recorded, not gated;
# the JSON rows land in bench/BENCH_recover.json (uploaded as a CI
# artifact).
echo "check_bench: smoke-running docs-bench -exp recover (run-only, no threshold)"
go run ./cmd/docs-bench -exp recover -quick -json bench/BENCH_recover.json

# HTTP load guard: drive the real server (real TCP, WAL + fsync) with the
# open-loop harness and gate BATCHED throughput two ways against the
# committed bench/BENCH_http.json (quick-mode shape, reference machine):
#  1. relative — best batched answers/sec must not regress more than the
#     threshold (default 25%, override with BENCH_HTTP_THRESHOLD, a
#     multiplier like 1.50 for slower runner classes);
#  2. structural — batched must stay >= 3x single-submit in the SAME
#     fresh run (machine-independent: it is the protocol's whole point).
# The fresh rows overwrite bench/BENCH_http.json in the workspace so CI
# uploads what this run measured; the committed copy stays the baseline.
http_json=bench/BENCH_http.json
http_threshold=${BENCH_HTTP_THRESHOLD:-1.25}
parse_http() { # $1=file $2=mode-regex -> best answers_per_sec among matching rows
    awk -v want="$2" '
        /"mode":/    { m = $2; gsub(/[",]/, "", m) }
        /"answers_per_sec":/ {
            v = $2; gsub(/,/, "", v)
            if (m ~ want && v + 0 > best) best = v + 0
        }
        END { print best + 0 }' "$1"
}
base_batched=$(parse_http "$http_json" "^batch-")
if [ "$base_batched" = "0" ]; then
    echo "check_bench: no batched rows in committed $http_json" >&2
    exit 2
fi
echo "check_bench: running docs-bench -exp http (batched throughput guard)"
go run ./cmd/docs-bench -exp http -quick -http-json "$http_json"
new_batched=$(parse_http "$http_json" "^batch-")
new_single=$(parse_http "$http_json" "^single$")
awk -v new="$new_batched" -v base="$base_batched" -v single="$new_single" -v thr="$http_threshold" 'BEGIN {
    floor = base / thr
    printf "check_bench: batched %.0f answers/sec, baseline %.0f, floor %.0f (/%.2f); single %.0f\n", new, base, floor, thr, single
    if (new < floor) {
        printf "check_bench: FAIL — batched HTTP throughput regressed %.1f%% below the baseline\n", (1 - new / base) * 100
        exit 1
    }
    if (new < 3 * single) {
        printf "check_bench: FAIL — batched throughput %.1fx single, need >= 3x\n", new / single
        exit 1
    }
    printf "check_bench: OK (batched %+.1f%% vs baseline, %.1fx single)\n", (new / base - 1) * 100, new / single
}'

# Accuracy guard: adversarial crowds must not erase DOCS's edge. The
# committed bench/BENCH_accuracy.json carries the DOCS(TI) − MV margin per
# gated spammer fraction; a fresh quick run (seeded, deterministic — the
# numbers are machine-independent) must reproduce every margin within
# BENCH_ACCURACY_TOLERANCE (absolute accuracy points, default 0.05) and
# must keep DOCS strictly above majority vote at the top spammer fraction.
# The fresh rows overwrite bench/BENCH_accuracy.json in the workspace so
# CI uploads what this run measured; the committed copy stays the baseline.
acc_json=bench/BENCH_accuracy.json
acc_tol=${BENCH_ACCURACY_TOLERANCE:-0.05}
parse_margins() { # $1=file -> lines "spammer_fraction docs_minus_mv" from the margins array
    awk '
        /"margins":/ { inm = 1 }
        inm && /"spammer_fraction":/ { f = $2; gsub(/,/, "", f) }
        inm && /"docs_minus_mv":/    { v = $2; gsub(/,/, "", v); print f + 0, v + 0 }
    ' "$1"
}
committed_margins=$(parse_margins "$acc_json")
if [ -z "$committed_margins" ]; then
    echo "check_bench: no margins in committed $acc_json" >&2
    exit 2
fi
echo "check_bench: running docs-bench -exp accuracy (DOCS vs MV margin guard)"
go run ./cmd/docs-bench -exp accuracy -quick -accuracy-json "$acc_json"
fresh_margins=$(parse_margins "$acc_json")
awk -v tol="$acc_tol" '
    NR == FNR { base[$1] = $2; next }
    { fresh[$1] = $2; if ($1 + 0 > top) top = $1 + 0 }
    END {
        fail = 0
        for (f in base) {
            if (!(f in fresh)) {
                printf "check_bench: FAIL — spammer fraction %s missing from fresh accuracy run\n", f
                fail = 1
                continue
            }
            printf "check_bench: spam %.0f%%: DOCS-MV margin %+.3f (committed %+.3f, floor %+.3f)\n",
                f * 100, fresh[f], base[f], base[f] - tol
            if (fresh[f] < base[f] - tol) {
                printf "check_bench: FAIL — DOCS-MV margin at spam %.0f%% regressed past tolerance\n", f * 100
                fail = 1
            }
        }
        if (fresh[top] <= 0) {
            printf "check_bench: FAIL — DOCS does not strictly beat MV at the top spammer fraction (%+.3f)\n", fresh[top]
            fail = 1
        }
        if (fail) exit 1
        printf "check_bench: OK — DOCS holds its margin over MV at every gated mix, strictly above at spam %.0f%%\n", top * 100
    }' <(echo "$committed_margins") <(echo "$fresh_margins")

# Density guard: the hibernating LRU cap must actually bound memory. The
# experiment itself is the correctness check (every sampled cold wake is
# fingerprint-verified bit-identical to its pre-hibernation state and the
# resident set is asserted <= the cap; any violation fails the run), so
# the shell-level gate is purely structural and machine-independent:
# capped-serving heap must come in at or below HALF the all-live heap in
# the SAME fresh run. Absolute heap and wake latencies are machine-
# dependent and are recorded, not gated. The fresh report overwrites
# bench/BENCH_density.json in the workspace so CI uploads what this run
# measured; the committed copy (full-scale, 10k campaigns) stays the
# reference.
density_json=bench/BENCH_density.json
echo "check_bench: running docs-bench -exp density (bounded-RSS structural guard)"
go run ./cmd/docs-bench -exp density -quick -density-json "$density_json"
awk '
    /"heap_all_live_bytes":/ { v = $2; gsub(/,/, "", v); all = v + 0 }
    /"heap_capped_bytes":/   { v = $2; gsub(/,/, "", v); capped = v + 0 }
    END {
        if (all <= 0 || capped <= 0) {
            printf "check_bench: FAIL — could not parse heap fields from the density report\n"
            exit 2
        }
        printf "check_bench: density heap all-live %d bytes, capped %d bytes (%.1fx reduction)\n",
            all, capped, all / capped
        if (capped * 2 > all) {
            printf "check_bench: FAIL — capped heap is not below half the all-live heap\n"
            exit 1
        }
        printf "check_bench: OK — hibernating cap bounds resident memory\n"
    }' "$density_json"
