#!/usr/bin/env bash
# Guard against serving-core throughput regressions: run the fixed-
# iteration BenchmarkParallelServe and fail if ns/op exceeds the committed
# baseline (bench/baseline.txt) by more than the threshold (default 25%).
#
# The benchmark runs a fixed -benchtime=1490x so every measurement does
# identical work; the script takes the best of two runs to damp scheduler
# noise on shared CI machines. Override the headroom with
# BENCH_GUARD_THRESHOLD (a multiplier, e.g. 1.50) when a runner class is
# known to be slower than the reference machine in the baseline file.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline_file=bench/baseline.txt
threshold=${BENCH_GUARD_THRESHOLD:-1.25}
iters=1490

base=$(awk '$1 == "BenchmarkParallelServe" {print $2}' "$baseline_file")
if [ -z "$base" ]; then
    echo "check_bench: no BenchmarkParallelServe entry in $baseline_file" >&2
    exit 2
fi

best=""
for run in 1 2; do
    out=$(go test -run '^$' -bench '^BenchmarkParallelServe$' -benchtime="${iters}x" -count=1 .)
    echo "$out"
    ns=$(echo "$out" | awk '/^BenchmarkParallelServe(-[0-9]+)?[[:space:]]/ {print $3; exit}')
    if [ -z "$ns" ]; then
        echo "check_bench: could not parse ns/op from benchmark output" >&2
        exit 2
    fi
    if [ -z "$best" ] || [ "$ns" -lt "$best" ]; then
        best=$ns
    fi
done

awk -v ns="$best" -v base="$base" -v thr="$threshold" 'BEGIN {
    limit = base * thr
    printf "check_bench: best %d ns/op, baseline %d ns/op, limit %.0f ns/op (x%.2f)\n", ns, base, limit, thr
    if (ns > limit) {
        printf "check_bench: FAIL — BenchmarkParallelServe regressed %.1f%% past the baseline\n", (ns / base - 1) * 100
        exit 1
    }
    printf "check_bench: OK (%+.1f%% vs baseline)\n", (ns / base - 1) * 100
}'

# Smoke path: the assignment experiment compares the indexed candidate
# set against the legacy scan and asserts every measured request's
# assignment identical between the two, so running it at all is a
# correctness check. Run-only — no latency threshold; machine-dependent
# speedups are reported, not gated.
echo "check_bench: smoke-running docs-bench -exp assign (run-only, no threshold)"
go run ./cmd/docs-bench -exp assign -quick

# Recovery smoke: boots the same logged campaign by full replay and by
# state snapshot and asserts the two fingerprints bit-identical before
# reporting timings, so running it at all is a correctness check too.
# Run-only — the speedup is machine-dependent and is recorded, not gated;
# the JSON rows land in bench/BENCH_recover.json (uploaded as a CI
# artifact).
echo "check_bench: smoke-running docs-bench -exp recover (run-only, no threshold)"
go run ./cmd/docs-bench -exp recover -quick -json bench/BENCH_recover.json
