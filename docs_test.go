package docs

import (
	"testing"
)

func exampleTasks() []Task {
	return []Task{
		{ID: 0, Text: "Does Michael Jordan win more NBA championships than Kobe Bryant?",
			Choices: []string{"yes", "no"}, GoldenTruth: 0},
		{ID: 1, Text: "Which food contains more calories, Chocolate or Honey?",
			Choices: []string{"Chocolate", "Honey"}, GoldenTruth: NoTruth},
		{ID: 2, Text: "Compare the height of Mount Everest and K2.",
			Choices: []string{"Everest", "K2"}, GoldenTruth: NoTruth},
	}
}

func TestSystemLifecycle(t *testing.T) {
	sys, err := New(Config{GoldenCount: -1, HITSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Publish(exampleTasks()); err != nil {
		t.Fatal(err)
	}
	if n := len(sys.DomainNames()); n != 26 {
		t.Errorf("DomainNames = %d, want 26", n)
	}

	batch, err := sys.Request("alice", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 {
		t.Fatalf("requested 2, got %d", len(batch))
	}
	for _, tk := range batch {
		if err := sys.Submit("alice", tk.ID, 0); err != nil {
			t.Fatal(err)
		}
	}
	cur := sys.CurrentResult(batch[0].ID)
	if cur.Choice != 0 {
		t.Errorf("current result = %d after unanimous 0", cur.Choice)
	}
	if q := sys.WorkerQuality("alice"); len(q) != 26 {
		t.Errorf("WorkerQuality size %d", len(q))
	}

	results, err := sys.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Errorf("Results = %d tasks, want 3", len(results))
	}
}

func TestPublishValidation(t *testing.T) {
	sys, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Publish([]Task{{ID: 0, Text: "x", Choices: []string{"only"}, GoldenTruth: NoTruth}}); err == nil {
		t.Error("single-choice task accepted")
	}
	if err := sys.Publish([]Task{{ID: 0, Text: "x", Choices: []string{"a", "b"}, GoldenTruth: 7}}); err == nil {
		t.Error("out-of-range golden truth accepted")
	}
}

func TestGoldenFlow(t *testing.T) {
	tasks := make([]Task, 0, 30)
	for i := 0; i < 30; i++ {
		tasks = append(tasks, Task{
			ID:   i,
			Text: "Which food contains more calories, Chocolate or Honey?",
			Choices: []string{
				"Chocolate", "Honey",
			},
			GoldenTruth: i % 2,
		})
	}
	sys, err := New(Config{GoldenCount: 5, HITSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Publish(tasks); err != nil {
		t.Fatal(err)
	}
	golden := sys.GoldenTaskIDs()
	if len(golden) != 5 {
		t.Fatalf("golden = %d, want 5", len(golden))
	}
	batch, err := sys.Request("bob", 3)
	if err != nil {
		t.Fatal(err)
	}
	goldenSet := map[int]bool{}
	for _, id := range golden {
		goldenSet[id] = true
	}
	for _, tk := range batch {
		if !goldenSet[tk.ID] {
			t.Errorf("new worker served non-golden task %d first", tk.ID)
		}
	}
}

func TestInferTruthOffline(t *testing.T) {
	tasks := exampleTasks()
	var answers []Answer
	// Three workers, two reliable and one contrarian.
	for _, tk := range tasks {
		answers = append(answers,
			Answer{Worker: "good1", TaskID: tk.ID, Choice: 0},
			Answer{Worker: "good2", TaskID: tk.ID, Choice: 0},
			Answer{Worker: "bad", TaskID: tk.ID, Choice: 1},
		)
	}
	results, err := InferTruth(tasks, answers)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(tasks) {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.Choice != 0 {
			t.Errorf("task %d inferred %d, want 0", r.TaskID, r.Choice)
		}
		if len(r.Confidence) != 2 {
			t.Errorf("task %d confidence size %d", r.TaskID, len(r.Confidence))
		}
	}
}

func TestInferTruthValidation(t *testing.T) {
	if _, err := InferTruth([]Task{{ID: 0, Text: "x", Choices: []string{"a"}, GoldenTruth: NoTruth}}, nil); err == nil {
		t.Error("invalid task accepted")
	}
	tasks := exampleTasks()
	bad := []Answer{{Worker: "w", TaskID: 0, Choice: 99}}
	if _, err := InferTruth(tasks, bad); err == nil {
		t.Error("out-of-range answer accepted")
	}
}
